//! The ROBDD manager: hash-consed node storage and the core apply algorithms.

use std::collections::HashMap;
use std::fmt;

/// A handle to a BDD node owned by a [`BddManager`].
///
/// Handles are only meaningful together with the manager that created them;
/// mixing handles across managers yields unspecified (but memory-safe) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant `false` BDD.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant `true` BDD.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` if this handle is the constant `false`.
    pub fn is_false(self) -> bool {
        self == Self::FALSE
    }

    /// Returns `true` if this handle is the constant `true`.
    pub fn is_true(self) -> bool {
        self == Self::TRUE
    }

    /// Returns `true` if this handle is a terminal (constant) node.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => f.write_str("⊥"),
            Bdd::TRUE => f.write_str("⊤"),
            Bdd(n) => write!(f, "bdd#{n}"),
        }
    }
}

/// A decision variable index. Variables are ordered by index: smaller indices
/// are tested closer to the root.
pub type Var = u32;

const TERMINAL_VAR: Var = Var::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: Var,
    low: Bdd,
    high: Bdd,
}

/// Binary boolean operations supported by [`BddManager::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BddOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
    /// Set difference: `a ∧ ¬b`.
    Diff,
}

impl BddOp {
    fn terminal(self, a: bool, b: bool) -> bool {
        match self {
            BddOp::And => a && b,
            BddOp::Or => a || b,
            BddOp::Xor => a ^ b,
            BddOp::Diff => a && !b,
        }
    }

    /// Short-circuit result when one operand is a terminal, if any.
    fn shortcut(self, a: Bdd, b: Bdd) -> Option<Bdd> {
        match self {
            BddOp::And => {
                if a.is_false() || b.is_false() {
                    Some(Bdd::FALSE)
                } else if a.is_true() {
                    Some(b)
                } else if b.is_true() || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            BddOp::Or => {
                if a.is_true() || b.is_true() {
                    Some(Bdd::TRUE)
                } else if a.is_false() {
                    Some(b)
                } else if b.is_false() || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            BddOp::Xor => {
                if a == b {
                    Some(Bdd::FALSE)
                } else if a.is_false() {
                    Some(b)
                } else if b.is_false() {
                    Some(a)
                } else {
                    None
                }
            }
            BddOp::Diff => {
                if a.is_false() || b.is_true() || a == b {
                    Some(Bdd::FALSE)
                } else if b.is_false() {
                    Some(a)
                } else {
                    None
                }
            }
        }
    }
}

/// A reduced ordered binary decision diagram manager with hash-consing and an
/// operation cache.
///
/// The manager owns all nodes; [`Bdd`] handles are indices into its node table.
/// All operations keep the diagram *reduced* (no node with identical low/high
/// children, no duplicate nodes) and *ordered* (variable indices strictly
/// increase along every path from the root).
///
/// # Example
///
/// ```
/// use scout_bdd::BddManager;
///
/// let mut m = BddManager::new(4);
/// let x0 = m.var(0);
/// let x1 = m.var(1);
/// let both = m.and(x0, x1);
/// assert_eq!(m.sat_count(both), 4.0); // x2, x3 free
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    op_cache: HashMap<(BddOp, Bdd, Bdd), Bdd>,
    not_cache: HashMap<Bdd, Bdd>,
    implies_cache: HashMap<(Bdd, Bdd), bool>,
    num_vars: u32,
}

impl BddManager {
    /// Creates a manager for `num_vars` decision variables (indices
    /// `0..num_vars`).
    pub fn new(num_vars: u32) -> Self {
        let nodes = vec![
            // FALSE terminal
            Node {
                var: TERMINAL_VAR,
                low: Bdd::FALSE,
                high: Bdd::FALSE,
            },
            // TRUE terminal
            Node {
                var: TERMINAL_VAR,
                low: Bdd::TRUE,
                high: Bdd::TRUE,
            },
        ];
        Self {
            nodes,
            unique: HashMap::new(),
            op_cache: HashMap::new(),
            not_cache: HashMap::new(),
            implies_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of decision variables this manager was created with.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total number of allocated nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from `root` (excluding terminals), a measure
    /// of the size of one particular BDD.
    pub fn size(&self, root: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(b) = stack.pop() {
            if b.is_terminal() || !seen.insert(b) {
                continue;
            }
            let node = self.nodes[b.index()];
            stack.push(node.low);
            stack.push(node.high);
        }
        seen.len()
    }

    fn mk(&mut self, var: Var, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&existing) = self.unique.get(&node) {
            return existing;
        }
        let handle = Bdd(u32::try_from(self.nodes.len()).expect("bdd node table overflow"));
        self.nodes.push(node);
        self.unique.insert(node, handle);
        handle
    }

    /// The BDD for a single positive literal `x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: Var) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Bdd::FALSE, Bdd::TRUE)
    }

    /// The BDD for a single negative literal `¬x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: Var) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Bdd::TRUE, Bdd::FALSE)
    }

    /// Applies a binary boolean operation, memoized.
    pub fn apply(&mut self, op: BddOp, a: Bdd, b: Bdd) -> Bdd {
        if a.is_terminal() && b.is_terminal() {
            return if op.terminal(a.is_true(), b.is_true()) {
                Bdd::TRUE
            } else {
                Bdd::FALSE
            };
        }
        if let Some(result) = op.shortcut(a, b) {
            return result;
        }
        if let Some(&cached) = self.op_cache.get(&(op, a, b)) {
            return cached;
        }
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let top = va.min(vb);
        let (a_low, a_high) = self.cofactors(a, top);
        let (b_low, b_high) = self.cofactors(b, top);
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let result = self.mk(top, low, high);
        self.op_cache.insert((op, a, b), result);
        result
    }

    fn var_of(&self, b: Bdd) -> Var {
        self.nodes[b.index()].var
    }

    fn cofactors(&self, b: Bdd, var: Var) -> (Bdd, Bdd) {
        let node = self.nodes[b.index()];
        if node.var == var {
            (node.low, node.high)
        } else {
            (b, b)
        }
    }

    /// Conjunction of two BDDs.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::And, a, b)
    }

    /// Disjunction of two BDDs.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::Or, a, b)
    }

    /// Exclusive-or of two BDDs.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::Xor, a, b)
    }

    /// Set difference `a ∧ ¬b`.
    pub fn diff(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::Diff, a, b)
    }

    /// Negation of a BDD.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        if a.is_true() {
            return Bdd::FALSE;
        }
        if a.is_false() {
            return Bdd::TRUE;
        }
        if let Some(&cached) = self.not_cache.get(&a) {
            return cached;
        }
        let node = self.nodes[a.index()];
        let low = self.not(node.low);
        let high = self.not(node.high);
        let result = self.mk(node.var, low, high);
        self.not_cache.insert(a, result);
        result
    }

    /// If-then-else: `cond ? then : otherwise`.
    pub fn ite(&mut self, cond: Bdd, then: Bdd, otherwise: Bdd) -> Bdd {
        let a = self.and(cond, then);
        let not_cond = self.not(cond);
        let b = self.and(not_cond, otherwise);
        self.or(a, b)
    }

    /// Conjunction of an iterator of BDDs (`true` for an empty iterator).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for item in items {
            acc = self.and(acc, item);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of BDDs (`false` for an empty iterator).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for item in items {
            acc = self.or(acc, item);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Returns `true` if the two BDDs denote the same boolean function.
    ///
    /// Thanks to hash-consing this is a constant-time handle comparison.
    pub fn equivalent(&self, a: Bdd, b: Bdd) -> bool {
        a == b
    }

    /// Evaluates the BDD under a full variable assignment.
    ///
    /// `assignment[i]` is the value of variable `i`; missing trailing variables
    /// default to `false`.
    pub fn eval(&self, mut b: Bdd, assignment: &[bool]) -> bool {
        while !b.is_terminal() {
            let node = self.nodes[b.index()];
            let value = assignment.get(node.var as usize).copied().unwrap_or(false);
            b = if value { node.high } else { node.low };
        }
        b.is_true()
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    ///
    /// Returns `f64` because the count can exceed `u64` for wide encodings.
    pub fn sat_count(&self, b: Bdd) -> f64 {
        let mut memo: HashMap<Bdd, f64> = HashMap::new();
        let total_vars = f64::from(self.num_vars);
        let fraction = self.sat_fraction(b, &mut memo);
        fraction * total_vars.exp2()
    }

    /// Fraction of the full assignment space that satisfies `b` (in `[0, 1]`).
    fn sat_fraction(&self, b: Bdd, memo: &mut HashMap<Bdd, f64>) -> f64 {
        if b.is_false() {
            return 0.0;
        }
        if b.is_true() {
            return 1.0;
        }
        if let Some(&f) = memo.get(&b) {
            return f;
        }
        let node = self.nodes[b.index()];
        let low = self.sat_fraction(node.low, memo);
        let high = self.sat_fraction(node.high, memo);
        let f = 0.5 * (low + high);
        memo.insert(b, f);
        f
    }

    /// Returns one satisfying assignment, or `None` if `b` is unsatisfiable.
    ///
    /// Variables not constrained along the chosen path are reported as `false`.
    pub fn any_sat(&self, b: Bdd) -> Option<Vec<bool>> {
        if b.is_false() {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut current = b;
        while !current.is_terminal() {
            let node = self.nodes[current.index()];
            if node.high.is_false() {
                assignment[node.var as usize] = false;
                current = node.low;
            } else {
                assignment[node.var as usize] = true;
                current = node.high;
            }
        }
        debug_assert!(current.is_true());
        Some(assignment)
    }

    /// Returns `true` if `b` has at least one satisfying assignment.
    pub fn is_satisfiable(&self, b: Bdd) -> bool {
        !b.is_false()
    }

    /// Returns `true` if `a` implies `b` (i.e. `a ∧ ¬b` is unsatisfiable).
    ///
    /// Unlike computing `diff(a, b)` and testing for `FALSE`, this fast path
    /// never materializes intermediate nodes: it walks the two diagrams'
    /// cofactors directly, short-circuits on the first counterexample, and
    /// memoizes verdicts in a dedicated cache. On the equivalence checker's
    /// hot path (thousands of `rule ⊆ allowed-space` subset tests) this keeps
    /// the node table from growing with throw-away difference diagrams.
    pub fn implies(&mut self, a: Bdd, b: Bdd) -> bool {
        // Terminal and identity short-circuits, mirroring BddOp::Diff.
        if a.is_false() || b.is_true() || a == b {
            return true;
        }
        if b.is_false() {
            // a is not FALSE here.
            return false;
        }
        if a.is_true() {
            // In a reduced diagram only TRUE denotes the tautology.
            return false;
        }
        if let Some(&cached) = self.implies_cache.get(&(a, b)) {
            return cached;
        }
        let top = self.var_of(a).min(self.var_of(b));
        let (a_low, a_high) = self.cofactors(a, top);
        let (b_low, b_high) = self.cofactors(b, top);
        let result = self.implies(a_low, b_low) && self.implies(a_high, b_high);
        self.implies_cache.insert((a, b), result);
        result
    }

    /// Number of entries across the operation caches (apply, not, implies).
    ///
    /// Useful to monitor the memory footprint of a long-lived manager.
    pub fn cache_len(&self) -> usize {
        self.op_cache.len() + self.not_cache.len() + self.implies_cache.len()
    }

    /// Drops every memoized operation result while keeping the node table.
    ///
    /// Existing [`Bdd`] handles stay valid; subsequent operations re-derive
    /// (and re-memoize) their results.
    pub fn clear_op_caches(&mut self) {
        self.op_cache.clear();
        self.not_cache.clear();
        self.implies_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_behave() {
        let m = BddManager::new(2);
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        assert!(m.eval(Bdd::TRUE, &[]));
        assert!(!m.eval(Bdd::FALSE, &[]));
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn var_and_nvar_are_complements() {
        let mut m = BddManager::new(1);
        let x = m.var(0);
        let nx = m.nvar(0);
        let not_x = m.not(x);
        assert_eq!(nx, not_x);
        assert!(m.eval(x, &[true]));
        assert!(!m.eval(x, &[false]));
        assert!(m.eval(nx, &[false]));
    }

    #[test]
    fn and_or_truth_table() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let and = m.and(x, y);
        let or = m.or(x, y);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(and, &[a, b]), a && b);
            assert_eq!(m.eval(or, &[a, b]), a || b);
        }
    }

    #[test]
    fn xor_and_diff_truth_table() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let xor = m.xor(x, y);
        let diff = m.diff(x, y);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(xor, &[a, b]), a ^ b);
            assert_eq!(m.eval(diff, &[a, b]), a && !b);
        }
    }

    #[test]
    fn hash_consing_makes_equivalence_a_pointer_check() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let a = m.and(x, y);
        let b = m.and(y, x);
        assert!(m.equivalent(a, b));
        // De Morgan: ¬(x ∧ y) == ¬x ∨ ¬y
        let lhs = m.not(a);
        let nx = m.not(x);
        let ny = m.not(y);
        let rhs = m.or(nx, ny);
        assert!(m.equivalent(lhs, rhs));
    }

    #[test]
    fn sat_count_over_free_variables() {
        let mut m = BddManager::new(4);
        let x = m.var(0);
        assert_eq!(m.sat_count(x), 8.0); // 2^3 free assignments
        let y = m.var(1);
        let both = m.and(x, y);
        assert_eq!(m.sat_count(both), 4.0);
        assert_eq!(m.sat_count(Bdd::TRUE), 16.0);
        assert_eq!(m.sat_count(Bdd::FALSE), 0.0);
    }

    #[test]
    fn any_sat_returns_a_model() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let nz = m.nvar(2);
        let f = m.and(x, nz);
        let model = m.any_sat(f).expect("satisfiable");
        assert!(m.eval(f, &model));
        assert!(m.any_sat(Bdd::FALSE).is_none());
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = BddManager::new(3);
        let c = m.var(0);
        let t = m.var(1);
        let e = m.var(2);
        let ite = m.ite(c, t, e);
        for bits in 0..8u8 {
            let assignment = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expected = if assignment[0] {
                assignment[1]
            } else {
                assignment[2]
            };
            assert_eq!(m.eval(ite, &assignment), expected);
        }
    }

    #[test]
    fn implies_detects_subset() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let both = m.and(x, y);
        assert!(m.implies(both, x));
        assert!(!m.implies(x, both));
        assert!(m.implies(Bdd::FALSE, x));
        assert!(m.implies(x, Bdd::TRUE));
    }

    #[test]
    fn and_all_or_all_fold() {
        let mut m = BddManager::new(3);
        let vars: Vec<Bdd> = (0..3).map(|i| m.var(i)).collect();
        let all = m.and_all(vars.clone());
        assert_eq!(m.sat_count(all), 1.0);
        let any = m.or_all(vars);
        assert_eq!(m.sat_count(any), 7.0);
        assert!(m.and_all(std::iter::empty()).is_true());
        assert!(m.or_all(std::iter::empty()).is_false());
    }

    #[test]
    fn reduction_eliminates_redundant_nodes() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let nx = m.not(x);
        let tautology = m.or(x, nx);
        assert!(tautology.is_true());
        let contradiction = m.and(x, nx);
        assert!(contradiction.is_false());
    }

    #[test]
    fn size_counts_reachable_nodes() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let f = m.and(x, y);
        let f = m.and(f, z);
        assert_eq!(m.size(f), 3);
        assert_eq!(m.size(Bdd::TRUE), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(2);
        let _ = m.var(5);
    }

    #[test]
    fn implies_does_not_materialize_nodes() {
        let mut m = BddManager::new(8);
        let vars: Vec<Bdd> = (0..8).map(|i| m.var(i)).collect();
        let narrow = m.and_all(vars.iter().copied().take(4));
        let wide = m.or_all(vars.iter().copied());
        let before = m.node_count();
        assert!(m.implies(narrow, wide));
        assert!(!m.implies(wide, narrow));
        assert_eq!(m.node_count(), before, "implies must not allocate nodes");
    }

    #[test]
    fn implies_results_survive_cache_clear() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let both = m.and(x, y);
        assert!(m.implies(both, x));
        assert!(m.cache_len() > 0);
        m.clear_op_caches();
        assert_eq!(m.cache_len(), 0);
        assert!(m.implies(both, x));
        assert!(!m.implies(x, both));
    }
}
