//! Cache-conscious storage backends for the BDD manager: the arena-backed
//! hash-consing table and the bounded direct-mapped operation caches.
//!
//! The default `std::collections::HashMap` pays SipHash plus a heap box per
//! entry on every `mk`/`apply` — the single hottest path of the equivalence
//! checker. The `UniqueTable` here replaces it with open addressing over a
//! flat `Vec<u32>` of node indices (offset by one so `0` means "empty"),
//! an FxHash-style multiplicative hasher and power-of-two capacities, so a
//! probe is a multiply, a mask and a handful of contiguous reads. Node
//! *content* stays in the manager's arena (`Vec<Node>`); the table only holds
//! indices, which keeps rehashing cheap and handles stable.
//!
//! The operation caches (`OpCache`, `NotCache`, `ImpliesCache`) are
//! lossy direct-mapped arrays in the BuDDy tradition: a colliding store simply
//! overwrites (an *eviction*), which bounds their memory by construction.
//! Losing an entry never changes results — the apply recursion recomputes the
//! value and every intermediate node it re-derives is already interned in the
//! unique table, so handles come out bit-identical regardless of cache
//! behavior. Each cache doubles (up to a configurable limit tied to the
//! engine's node budget) when evictions indicate thrashing.

/// Which storage backend a manager uses for hash-consing and memoization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeTableKind {
    /// Arena-backed open addressing + direct-mapped caches (the default).
    #[default]
    Arena,
    /// The historical `std::collections::HashMap` tables, kept as the
    /// benchmark baseline and as a differential-testing reference.
    Baseline,
}

/// Hit/miss/eviction counters of a manager's operation caches.
///
/// Hits and misses count lookups; evictions count entries lost to collisions
/// (direct-mapped caches) or to a clear forced by the growth limit (baseline
/// maps). Counters are cumulative for the life of the manager and are not
/// reset by [`clear`](crate::BddManager::clear_op_caches)s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a cache.
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Entries overwritten by a colliding store, or dropped by a bounded
    /// clear.
    pub evictions: u64,
}

/// Outcome of a [`UniqueTable::probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// The key is interned at this arena index.
    Found(u32),
    /// The key is absent; it belongs in this slot position.
    Vacant(usize),
}

const FX_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// FxHash-style multiplicative avalanche over two packed words.
#[inline]
fn hash2(a: u64, b: u64) -> u64 {
    let mut h = a.wrapping_mul(FX_SEED);
    h ^= h >> 32;
    h = (h ^ b).wrapping_mul(FX_SEED);
    h ^ (h >> 29)
}

/// Open-addressing hash-consing table over the manager's node arena.
///
/// Slots store `node index + 1` (`0` = empty). Probing is linear; capacity is
/// always a power of two and doubles at 75% load. Because slots hold indices
/// and keys live in the arena, a rehash never moves node content and existing
/// handles stay valid verbatim.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    slots: Vec<u32>,
    len: usize,
}

const INITIAL_UNIQUE_CAPACITY: usize = 1 << 10;

impl UniqueTable {
    pub(crate) fn new() -> Self {
        Self {
            slots: vec![0; INITIAL_UNIQUE_CAPACITY],
            len: 0,
        }
    }

    #[inline]
    fn hash(var: u32, low: u32, high: u32) -> u64 {
        hash2((u64::from(var) << 32) | u64::from(low), u64::from(high))
    }

    /// Looks up `(var, low, high)` among the interned nodes. `read` maps an
    /// arena index to a node's `(var, low, high)` key. Returns the arena index
    /// on a hit, or the vacant slot position where the key belongs.
    #[inline]
    pub(crate) fn probe<R: Fn(u32) -> (u32, u32, u32)>(
        &self,
        var: u32,
        low: u32,
        high: u32,
        read: R,
    ) -> Probe {
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(var, low, high) as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                return Probe::Vacant(i);
            }
            if read(slot - 1) == (var, low, high) {
                return Probe::Found(slot - 1);
            }
            i = (i + 1) & mask;
        }
    }

    /// Fills the vacant `slot` (as returned by [`probe`](Self::probe)) with a
    /// freshly allocated arena `index`. The node must already be readable
    /// through `read` — growth rehashes every interned index, including this
    /// one.
    #[inline]
    pub(crate) fn insert<R: Fn(u32) -> (u32, u32, u32)>(
        &mut self,
        slot: usize,
        index: u32,
        read: R,
    ) {
        self.slots[slot] = index + 1;
        self.len += 1;
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow(read);
        }
    }

    /// Doubles the slot array and reinserts every interned index. Reads node
    /// keys back from the arena, so handles (arena indices) are untouched.
    fn grow<R: Fn(u32) -> (u32, u32, u32)>(&mut self, read: R) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![0; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if slot == 0 {
                continue;
            }
            let (var, low, high) = read(slot - 1);
            let mut i = (Self::hash(var, low, high) as usize) & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }

    /// Number of interned (non-terminal) nodes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Current slot-array capacity (always a power of two).
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Shared bookkeeping of a lossy direct-mapped cache: entry array length is a
/// power of two; on eviction-thrash the cache doubles (dropping its contents,
/// which is safe — the caches are pure memoization) until `limit` entries.
#[derive(Debug, Clone)]
struct DirectBase {
    capacity: usize,
    limit: usize,
    occupied: usize,
    evictions_since_resize: u64,
}

pub(crate) const INITIAL_CACHE_CAPACITY: usize = 1 << 12;
/// Default per-cache entry limit (~4 MiB of op-cache entries).
pub(crate) const DEFAULT_CACHE_LIMIT: usize = 1 << 18;

impl DirectBase {
    fn new(limit: usize) -> Self {
        Self {
            capacity: INITIAL_CACHE_CAPACITY.min(limit.next_power_of_two()),
            limit: limit.next_power_of_two(),
            occupied: 0,
            evictions_since_resize: 0,
        }
    }

    /// Records one eviction; returns `true` if the cache should double —
    /// evictions since the last resize exceed the capacity, i.e. the cache is
    /// recycling faster than it retains.
    fn note_eviction(&mut self) -> bool {
        self.evictions_since_resize += 1;
        self.capacity < self.limit && self.evictions_since_resize as usize > self.capacity
    }

    fn resized(&mut self, new_capacity: usize) {
        self.capacity = new_capacity;
        self.occupied = 0;
        self.evictions_since_resize = 0;
    }
}

/// Direct-mapped memoization of `apply(op, a, b)`. `tag` is the operation
/// index plus one; `0` marks an empty entry.
#[derive(Debug, Clone, Copy, Default)]
struct OpEntry {
    a: u32,
    b: u32,
    result: u32,
    tag: u8,
}

#[derive(Debug, Clone)]
pub(crate) struct OpCache {
    entries: Vec<OpEntry>,
    base: DirectBase,
}

impl OpCache {
    pub(crate) fn new(limit: usize) -> Self {
        let base = DirectBase::new(limit);
        Self {
            entries: vec![OpEntry::default(); base.capacity],
            base,
        }
    }

    #[inline]
    fn index(&self, tag: u8, a: u32, b: u32) -> usize {
        let key = (u64::from(tag) << 32) | u64::from(a);
        (hash2(key, u64::from(b)) as usize) & (self.entries.len() - 1)
    }

    #[inline]
    pub(crate) fn get(&self, tag: u8, a: u32, b: u32) -> Option<u32> {
        let e = &self.entries[self.index(tag, a, b)];
        (e.tag == tag && e.a == a && e.b == b).then_some(e.result)
    }

    #[inline]
    pub(crate) fn put(&mut self, tag: u8, a: u32, b: u32, result: u32, evictions: &mut u64) {
        let i = self.index(tag, a, b);
        let e = &mut self.entries[i];
        if e.tag == 0 {
            self.base.occupied += 1;
        } else if e.tag != tag || e.a != a || e.b != b {
            *evictions += 1;
            if self.base.note_eviction() {
                let new_cap = self.entries.len() * 2;
                self.entries = vec![OpEntry::default(); new_cap];
                self.base.resized(new_cap);
                let i = self.index(tag, a, b);
                self.entries[i] = OpEntry { a, b, result, tag };
                self.base.occupied = 1;
                return;
            }
        }
        self.entries[i] = OpEntry { a, b, result, tag };
    }

    pub(crate) fn len(&self) -> usize {
        self.base.occupied
    }

    pub(crate) fn clear(&mut self) {
        self.entries.fill(OpEntry::default());
        self.base.occupied = 0;
    }

    pub(crate) fn set_limit(&mut self, limit: usize) {
        self.base.limit = limit.next_power_of_two();
        if self.entries.len() > self.base.limit {
            self.entries = vec![OpEntry::default(); self.base.limit];
            self.base.resized(self.base.limit);
        }
    }
}

/// Direct-mapped memoization of `not(a)`. Cached operands are always
/// non-terminal (`a >= 2`), so `a == 0` marks an empty entry.
#[derive(Debug, Clone, Copy, Default)]
struct NotEntry {
    a: u32,
    result: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct NotCache {
    entries: Vec<NotEntry>,
    base: DirectBase,
}

impl NotCache {
    pub(crate) fn new(limit: usize) -> Self {
        let base = DirectBase::new(limit);
        Self {
            entries: vec![NotEntry::default(); base.capacity],
            base,
        }
    }

    #[inline]
    fn index(&self, a: u32) -> usize {
        (hash2(u64::from(a), 0) as usize) & (self.entries.len() - 1)
    }

    #[inline]
    pub(crate) fn get(&self, a: u32) -> Option<u32> {
        let e = &self.entries[self.index(a)];
        (e.a == a).then_some(e.result)
    }

    #[inline]
    pub(crate) fn put(&mut self, a: u32, result: u32, evictions: &mut u64) {
        let i = self.index(a);
        let e = &mut self.entries[i];
        if e.a == 0 {
            self.base.occupied += 1;
        } else if e.a != a {
            *evictions += 1;
            if self.base.note_eviction() {
                let new_cap = self.entries.len() * 2;
                self.entries = vec![NotEntry::default(); new_cap];
                self.base.resized(new_cap);
                let i = self.index(a);
                self.entries[i] = NotEntry { a, result };
                self.base.occupied = 1;
                return;
            }
        }
        self.entries[i] = NotEntry { a, result };
    }

    pub(crate) fn len(&self) -> usize {
        self.base.occupied
    }

    pub(crate) fn clear(&mut self) {
        self.entries.fill(NotEntry::default());
        self.base.occupied = 0;
    }

    pub(crate) fn set_limit(&mut self, limit: usize) {
        self.base.limit = limit.next_power_of_two();
        if self.entries.len() > self.base.limit {
            self.entries = vec![NotEntry::default(); self.base.limit];
            self.base.resized(self.base.limit);
        }
    }
}

/// Direct-mapped memoization of `implies(a, b)` verdicts. Cached operands are
/// always non-terminal (terminal cases short-circuit), so `a == 0` marks an
/// empty entry; the verdict is packed as `1`/`2` in `result`.
#[derive(Debug, Clone, Copy, Default)]
struct ImpliesEntry {
    a: u32,
    b: u32,
    result: u8,
}

#[derive(Debug, Clone)]
pub(crate) struct ImpliesCache {
    entries: Vec<ImpliesEntry>,
    base: DirectBase,
}

impl ImpliesCache {
    pub(crate) fn new(limit: usize) -> Self {
        let base = DirectBase::new(limit);
        Self {
            entries: vec![ImpliesEntry::default(); base.capacity],
            base,
        }
    }

    #[inline]
    fn index(&self, a: u32, b: u32) -> usize {
        (hash2(u64::from(a), u64::from(b)) as usize) & (self.entries.len() - 1)
    }

    #[inline]
    pub(crate) fn get(&self, a: u32, b: u32) -> Option<bool> {
        let e = &self.entries[self.index(a, b)];
        (e.a == a && e.b == b).then_some(e.result == 2)
    }

    #[inline]
    pub(crate) fn put(&mut self, a: u32, b: u32, verdict: bool, evictions: &mut u64) {
        let result = if verdict { 2 } else { 1 };
        let i = self.index(a, b);
        let e = &mut self.entries[i];
        if e.a == 0 {
            self.base.occupied += 1;
        } else if e.a != a || e.b != b {
            *evictions += 1;
            if self.base.note_eviction() {
                let new_cap = self.entries.len() * 2;
                self.entries = vec![ImpliesEntry::default(); new_cap];
                self.base.resized(new_cap);
                let i = self.index(a, b);
                self.entries[i] = ImpliesEntry { a, b, result };
                self.base.occupied = 1;
                return;
            }
        }
        self.entries[i] = ImpliesEntry { a, b, result };
    }

    pub(crate) fn len(&self) -> usize {
        self.base.occupied
    }

    pub(crate) fn clear(&mut self) {
        self.entries.fill(ImpliesEntry::default());
        self.base.occupied = 0;
    }

    pub(crate) fn set_limit(&mut self, limit: usize) {
        self.base.limit = limit.next_power_of_two();
        if self.entries.len() > self.base.limit {
            self.entries = vec![ImpliesEntry::default(); self.base.limit];
            self.base.resized(self.base.limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_table_interns_and_grows() {
        let mut arena: Vec<(u32, u32, u32)> = Vec::new();
        let mut table = UniqueTable::new();
        let initial_capacity = table.capacity();
        // Insert enough distinct keys to force several growths.
        for v in 0..4096u32 {
            let key = (v, v.wrapping_mul(7), v.wrapping_mul(13) | 1);
            match table.probe(key.0, key.1, key.2, |i| arena[i as usize]) {
                Probe::Found(_) => panic!("fresh key reported as interned"),
                Probe::Vacant(slot) => {
                    let index = arena.len() as u32;
                    arena.push(key);
                    table.insert(slot, index, |i| arena[i as usize]);
                }
            }
        }
        assert_eq!(table.len(), 4096);
        assert!(table.capacity() > initial_capacity, "table must have grown");
        // Every key probes back to its original index (no duplicates, indices
        // preserved across rehashes).
        for v in 0..4096u32 {
            let key = (v, v.wrapping_mul(7), v.wrapping_mul(13) | 1);
            match table.probe(key.0, key.1, key.2, |i| arena[i as usize]) {
                Probe::Found(index) => assert_eq!(arena[index as usize], key),
                Probe::Vacant(_) => panic!("interned key lost after growth"),
            }
        }
        assert_eq!(table.len(), 4096);
    }

    #[test]
    fn op_cache_is_lossy_and_bounded() {
        let mut cache = OpCache::new(INITIAL_CACHE_CAPACITY);
        let mut evictions = 0u64;
        for k in 0..(INITIAL_CACHE_CAPACITY as u32 * 4) {
            cache.put(1, k + 2, k + 3, k, &mut evictions);
        }
        assert!(cache.len() <= INITIAL_CACHE_CAPACITY);
        assert!(evictions > 0, "collisions must be recorded");
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn op_cache_grows_under_thrash_up_to_limit() {
        let limit = INITIAL_CACHE_CAPACITY * 4;
        let mut cache = OpCache::new(limit);
        let mut evictions = 0u64;
        for round in 0..4u32 {
            for k in 0..(limit as u32 * 2) {
                cache.put(1, k + 2, k + round + 3, k, &mut evictions);
            }
        }
        assert_eq!(cache.entries.len(), limit, "growth stops at the limit");
        // Shrinking the limit snaps the capacity back down.
        cache.set_limit(INITIAL_CACHE_CAPACITY);
        assert_eq!(cache.entries.len(), INITIAL_CACHE_CAPACITY);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn caches_roundtrip_entries() {
        let mut evictions = 0u64;
        let mut op = OpCache::new(DEFAULT_CACHE_LIMIT);
        op.put(2, 5, 9, 77, &mut evictions);
        assert_eq!(op.get(2, 5, 9), Some(77));
        assert_eq!(op.get(1, 5, 9), None);

        let mut not = NotCache::new(DEFAULT_CACHE_LIMIT);
        not.put(5, 42, &mut evictions);
        assert_eq!(not.get(5), Some(42));
        assert_eq!(not.get(6), None);
        not.clear();
        assert_eq!(not.get(5), None);

        let mut imp = ImpliesCache::new(DEFAULT_CACHE_LIMIT);
        imp.put(5, 9, true, &mut evictions);
        imp.put(9, 5, false, &mut evictions);
        assert_eq!(imp.get(5, 9), Some(true));
        assert_eq!(imp.get(9, 5), Some(false));
        assert_eq!(imp.get(5, 10), None);
        imp.clear();
        assert_eq!(imp.len(), 0);
        assert_eq!(evictions, 0);
    }
}
