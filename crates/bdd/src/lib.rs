//! # scout-bdd
//!
//! A small, dependency-free reduced ordered binary decision diagram (ROBDD)
//! engine. The SCOUT paper's "in-house equivalence checker" compares the
//! logical policy (L-type rules) against deployed TCAM rules (T-type rules) by
//! building one ROBDD per rule set and checking the diagrams for equality;
//! this crate provides the diagram machinery for that check (see
//! `scout-equiv`).
//!
//! The engine supports hash-consed node storage (making semantic equivalence a
//! handle comparison), the binary `apply` operations (AND/OR/XOR/DIFF),
//! negation, if-then-else, satisfiability queries, model extraction,
//! satisfying-assignment counting, and integer field/range encoders for
//! packet-classification header spaces.
//!
//! # Example
//!
//! ```
//! use scout_bdd::{BddManager, FieldLayout};
//!
//! // Two 8-bit header fields.
//! let layout = FieldLayout::new(&[8, 8]);
//! let mut m = layout.manager();
//! // Rule A: field0 == 5 and field1 in 80..=90.
//! let f0 = layout.field(0).exact(&mut m, 5);
//! let f1 = layout.field(1).range(&mut m, 80, 90);
//! let rule_a = m.and(f0, f1);
//! // The rule admits exactly 11 packets.
//! assert_eq!(m.sat_count(rule_a), 11.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod manager;

pub use encode::{FieldEncoder, FieldLayout};
pub use manager::{Bdd, BddManager, BddOp, Var};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A tiny boolean expression AST used to cross-check BDD semantics against
    /// direct evaluation.
    #[derive(Debug, Clone)]
    enum Expr {
        Var(u32),
        Not(Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
    }

    impl Expr {
        fn eval(&self, assignment: &[bool]) -> bool {
            match self {
                Expr::Var(i) => assignment[*i as usize],
                Expr::Not(e) => !e.eval(assignment),
                Expr::And(a, b) => a.eval(assignment) && b.eval(assignment),
                Expr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
                Expr::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
            }
        }

        fn to_bdd(&self, m: &mut BddManager) -> Bdd {
            match self {
                Expr::Var(i) => m.var(*i),
                Expr::Not(e) => {
                    let inner = e.to_bdd(m);
                    m.not(inner)
                }
                Expr::And(a, b) => {
                    let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                    m.and(x, y)
                }
                Expr::Or(a, b) => {
                    let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                    m.or(x, y)
                }
                Expr::Xor(a, b) => {
                    let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                    m.xor(x, y)
                }
            }
        }
    }

    const NUM_VARS: u32 = 5;

    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = (0..NUM_VARS).prop_map(Expr::Var);
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn all_assignments(n: u32) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
    }

    proptest! {
        #[test]
        fn bdd_matches_truth_table(expr in expr_strategy()) {
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            for assignment in all_assignments(NUM_VARS) {
                prop_assert_eq!(m.eval(bdd, &assignment), expr.eval(&assignment));
            }
        }

        #[test]
        fn sat_count_matches_truth_table(expr in expr_strategy()) {
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            let expected = all_assignments(NUM_VARS)
                .filter(|a| expr.eval(a))
                .count() as f64;
            prop_assert!((m.sat_count(bdd) - expected).abs() < 1e-9);
        }

        #[test]
        fn equivalent_expressions_get_equal_handles(expr in expr_strategy()) {
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            // Double negation and OR with self are semantic no-ops.
            let neg = m.not(bdd);
            let double_neg = m.not(neg);
            prop_assert!(m.equivalent(bdd, double_neg));
            let or_self = m.or(bdd, bdd);
            prop_assert!(m.equivalent(bdd, or_self));
        }

        #[test]
        fn any_sat_model_satisfies(expr in expr_strategy()) {
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            match m.any_sat(bdd) {
                Some(model) => prop_assert!(m.eval(bdd, &model)),
                None => prop_assert!(bdd.is_false()),
            }
        }

        #[test]
        fn range_encoding_matches_interval(width in 1u32..10, lo in 0u64..512, hi in 0u64..512) {
            let max = (1u64 << width) - 1;
            let lo = lo.min(max);
            let hi = hi.min(max);
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let enc = FieldEncoder::new(0, width);
            let mut m = BddManager::new(width);
            let range = enc.range(&mut m, lo, hi);
            for v in 0..=max {
                let exact = enc.exact(&mut m, v);
                let in_range = m.and(exact, range);
                prop_assert_eq!(m.is_satisfiable(in_range), (lo..=hi).contains(&v));
            }
        }
    }
}
