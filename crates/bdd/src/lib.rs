//! # scout-bdd
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! A small, dependency-free reduced ordered binary decision diagram (ROBDD)
//! engine. The SCOUT paper's "in-house equivalence checker" compares the
//! logical policy (L-type rules) against deployed TCAM rules (T-type rules) by
//! building one ROBDD per rule set and checking the diagrams for equality;
//! this crate provides the diagram machinery for that check (see
//! `scout-equiv`).
//!
//! The engine supports hash-consed node storage (making semantic equivalence a
//! handle comparison), the binary `apply` operations (AND/OR/XOR/DIFF),
//! negation, if-then-else, satisfiability queries, model extraction,
//! satisfying-assignment counting, and integer field/range encoders for
//! packet-classification header spaces.
//!
//! # Example
//!
//! ```
//! use scout_bdd::{BddManager, FieldLayout};
//!
//! // Two 8-bit header fields.
//! let layout = FieldLayout::new(&[8, 8]);
//! let mut m = layout.manager();
//! // Rule A: field0 == 5 and field1 in 80..=90.
//! let f0 = layout.field(0).exact(&mut m, 5);
//! let f1 = layout.field(1).range(&mut m, 80, 90);
//! let rule_a = m.and(f0, f1);
//! // The rule admits exactly 11 packets.
//! assert_eq!(m.sat_count(rule_a), 11.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod manager;
pub mod table;

pub use encode::{FieldEncoder, FieldLayout};
pub use manager::{Bdd, BddManager, BddOp, Var};
pub use table::{CacheStats, NodeTableKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A tiny boolean expression AST used to cross-check BDD semantics against
    /// direct evaluation.
    #[derive(Debug, Clone)]
    enum Expr {
        Var(u32),
        Not(Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
    }

    impl Expr {
        fn eval(&self, assignment: &[bool]) -> bool {
            match self {
                Expr::Var(i) => assignment[*i as usize],
                Expr::Not(e) => !e.eval(assignment),
                Expr::And(a, b) => a.eval(assignment) && b.eval(assignment),
                Expr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
                Expr::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
            }
        }

        fn to_bdd(&self, m: &mut BddManager) -> Bdd {
            match self {
                Expr::Var(i) => m.var(*i),
                Expr::Not(e) => {
                    let inner = e.to_bdd(m);
                    m.not(inner)
                }
                Expr::And(a, b) => {
                    let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                    m.and(x, y)
                }
                Expr::Or(a, b) => {
                    let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                    m.or(x, y)
                }
                Expr::Xor(a, b) => {
                    let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                    m.xor(x, y)
                }
            }
        }
    }

    const NUM_VARS: u32 = 5;

    /// Generates a random expression over `NUM_VARS` variables with bounded
    /// depth, exercising every operator.
    fn random_expr(rng: &mut StdRng, depth: u32) -> Expr {
        if depth == 0 || rng.gen_bool(0.3) {
            return Expr::Var(rng.gen_range(0..NUM_VARS));
        }
        let a = Box::new(random_expr(rng, depth - 1));
        match rng.gen_range(0u8..4) {
            0 => Expr::Not(a),
            1 => Expr::And(a, Box::new(random_expr(rng, depth - 1))),
            2 => Expr::Or(a, Box::new(random_expr(rng, depth - 1))),
            _ => Expr::Xor(a, Box::new(random_expr(rng, depth - 1))),
        }
    }

    fn all_assignments(n: u32) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
    }

    const CASES: u64 = 200;

    #[test]
    fn bdd_matches_truth_table() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let expr = random_expr(&mut rng, 4);
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            for assignment in all_assignments(NUM_VARS) {
                assert_eq!(
                    m.eval(bdd, &assignment),
                    expr.eval(&assignment),
                    "seed {seed}: {expr:?} at {assignment:?}"
                );
            }
        }
    }

    #[test]
    fn sat_count_matches_truth_table() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let expr = random_expr(&mut rng, 4);
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            let expected = all_assignments(NUM_VARS).filter(|a| expr.eval(a)).count() as f64;
            assert!(
                (m.sat_count(bdd) - expected).abs() < 1e-9,
                "seed {seed}: {expr:?}"
            );
        }
    }

    #[test]
    fn equivalent_expressions_get_equal_handles() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let expr = random_expr(&mut rng, 4);
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            // Double negation and OR with self are semantic no-ops.
            let neg = m.not(bdd);
            let double_neg = m.not(neg);
            assert!(m.equivalent(bdd, double_neg), "seed {seed}");
            let or_self = m.or(bdd, bdd);
            assert!(m.equivalent(bdd, or_self), "seed {seed}");
        }
    }

    #[test]
    fn any_sat_model_satisfies() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let expr = random_expr(&mut rng, 4);
            let mut m = BddManager::new(NUM_VARS);
            let bdd = expr.to_bdd(&mut m);
            match m.any_sat(bdd) {
                Some(model) => assert!(m.eval(bdd, &model), "seed {seed}"),
                None => assert!(bdd.is_false(), "seed {seed}"),
            }
        }
    }

    #[test]
    fn implies_fast_path_agrees_with_diff() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let a_expr = random_expr(&mut rng, 4);
            let b_expr = random_expr(&mut rng, 4);
            let mut m = BddManager::new(NUM_VARS);
            let a = a_expr.to_bdd(&mut m);
            let b = b_expr.to_bdd(&mut m);
            let via_diff = m.diff(a, b).is_false();
            assert_eq!(m.implies(a, b), via_diff, "seed {seed}");
        }
    }

    #[test]
    fn range_encoding_matches_interval() {
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let width = rng.gen_range(1u32..10);
            let max = (1u64 << width) - 1;
            let lo = rng.gen_range(0u64..512).min(max);
            let hi = rng.gen_range(0u64..512).min(max);
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let enc = FieldEncoder::new(0, width);
            let mut m = BddManager::new(width);
            let range = enc.range(&mut m, lo, hi);
            for v in 0..=max {
                let exact = enc.exact(&mut m, v);
                let in_range = m.and(exact, range);
                assert_eq!(
                    m.is_satisfiable(in_range),
                    (lo..=hi).contains(&v),
                    "seed {seed}: v={v} in [{lo}, {hi}]"
                );
            }
        }
    }
}
