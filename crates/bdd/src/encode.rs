//! Encoders from integer fields and ranges to BDDs.
//!
//! TCAM rules match on fixed-width integer fields (VRF id, EPG class ids,
//! protocol, port). A packet-classifier rule set becomes a BDD by encoding
//! every field over a contiguous block of boolean variables (most significant
//! bit first) and combining fields with conjunction.

use crate::manager::{Bdd, BddManager, Var};

/// A contiguous block of BDD variables encoding one unsigned integer field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldEncoder {
    /// Index of the first (most significant) variable of the field.
    pub first_var: Var,
    /// Number of bits in the field.
    pub width: u32,
}

impl FieldEncoder {
    /// Creates an encoder for a field of `width` bits starting at `first_var`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(first_var: Var, width: u32) -> Self {
        assert!(width > 0 && width <= 64, "field width must be in 1..=64");
        Self { first_var, width }
    }

    /// Index one past the last variable of the field.
    pub fn end_var(&self) -> Var {
        self.first_var + self.width
    }

    /// Largest value representable in this field.
    pub fn max_value(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// BDD asserting that the field equals `value` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the field.
    pub fn exact(&self, manager: &mut BddManager, value: u64) -> Bdd {
        assert!(
            value <= self.max_value(),
            "value {value} does not fit in {} bits",
            self.width
        );
        let mut acc = Bdd::TRUE;
        for bit in 0..self.width {
            // Most significant bit is the first variable.
            let var = self.first_var + bit;
            let shift = self.width - 1 - bit;
            let bit_set = (value >> shift) & 1 == 1;
            let literal = if bit_set {
                manager.var(var)
            } else {
                manager.nvar(var)
            };
            acc = manager.and(acc, literal);
        }
        acc
    }

    /// BDD asserting that the field value is in the inclusive range
    /// `[lo, hi]`.
    ///
    /// Uses the classic recursive interval construction, producing a BDD of
    /// size `O(width)` per bound rather than enumerating values.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi` does not fit in the field.
    pub fn range(&self, manager: &mut BddManager, lo: u64, hi: u64) -> Bdd {
        assert!(lo <= hi, "range lower bound exceeds upper bound");
        assert!(
            hi <= self.max_value(),
            "range upper bound {hi} does not fit in {} bits",
            self.width
        );
        if lo == 0 && hi == self.max_value() {
            return Bdd::TRUE;
        }
        let ge = self.compare(manager, lo, true);
        let le = self.compare(manager, hi, false);
        manager.and(ge, le)
    }

    /// BDD for `field >= bound` (when `greater` is true) or `field <= bound`.
    fn compare(&self, manager: &mut BddManager, bound: u64, greater: bool) -> Bdd {
        // Build from the least significant bit upward.
        // For >=: acc_k means "remaining low k bits >= low k bits of bound".
        // For <=: symmetric.
        let mut acc = Bdd::TRUE;
        for offset in 0..self.width {
            let bit_index = self.width - 1 - offset; // 0 = MSB
            let var = self.first_var + bit_index;
            let shift = offset;
            let bound_bit = (bound >> shift) & 1 == 1;
            let x = manager.var(var);
            let nx = manager.nvar(var);
            acc = if greater {
                if bound_bit {
                    // x=1 and rest >= ; x=0 impossible
                    manager.and(x, acc)
                } else {
                    // x=1 -> anything; x=0 -> rest >=
                    let when_zero = manager.and(nx, acc);
                    manager.or(x, when_zero)
                }
            } else if bound_bit {
                // <=: x=0 -> anything; x=1 -> rest <=
                let when_one = manager.and(x, acc);
                manager.or(nx, when_one)
            } else {
                // <=: x must be 0 and rest <=
                manager.and(nx, acc)
            };
        }
        acc
    }

    /// Extracts the field value from a full assignment (as produced by
    /// [`BddManager::any_sat`]).
    pub fn decode(&self, assignment: &[bool]) -> u64 {
        let mut value = 0u64;
        for bit in 0..self.width {
            let var = (self.first_var + bit) as usize;
            value <<= 1;
            if assignment.get(var).copied().unwrap_or(false) {
                value |= 1;
            }
        }
        value
    }
}

/// Lays out a sequence of fields over a fresh variable space.
///
/// # Example
///
/// ```
/// use scout_bdd::{BddManager, FieldLayout};
///
/// let layout = FieldLayout::new(&[4, 8]);
/// let mut m = BddManager::new(layout.total_vars());
/// let f0 = layout.field(0).exact(&mut m, 3);
/// let f1 = layout.field(1).range(&mut m, 10, 20);
/// let rule = m.and(f0, f1);
/// assert!(m.is_satisfiable(rule));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    fields: Vec<FieldEncoder>,
    total_vars: u32,
}

impl FieldLayout {
    /// Creates a layout with the given bit widths, packed contiguously.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or any width is 0 or greater than 64.
    pub fn new(widths: &[u32]) -> Self {
        assert!(!widths.is_empty(), "layout requires at least one field");
        let mut fields = Vec::with_capacity(widths.len());
        let mut next = 0u32;
        for &w in widths {
            let enc = FieldEncoder::new(next, w);
            next = enc.end_var();
            fields.push(enc);
        }
        Self {
            fields,
            total_vars: next,
        }
    }

    /// Total number of BDD variables needed by the layout.
    pub fn total_vars(&self) -> u32 {
        self.total_vars
    }

    /// Number of fields in the layout.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// The encoder for field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn field(&self, index: usize) -> FieldEncoder {
        self.fields[index]
    }

    /// Creates a manager sized for this layout.
    pub fn manager(&self) -> BddManager {
        BddManager::new(self.total_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_encodes_one_value() {
        let enc = FieldEncoder::new(0, 4);
        let mut m = BddManager::new(4);
        let b = enc.exact(&mut m, 9); // 1001
        assert_eq!(m.sat_count(b), 1.0);
        assert!(m.eval(b, &[true, false, false, true]));
        assert!(!m.eval(b, &[true, false, false, false]));
        let model = m.any_sat(b).unwrap();
        assert_eq!(enc.decode(&model), 9);
    }

    #[test]
    fn range_counts_match() {
        let enc = FieldEncoder::new(0, 6);
        let mut m = BddManager::new(6);
        let b = enc.range(&mut m, 5, 17);
        assert_eq!(m.sat_count(b), 13.0);
        // Every value in range satisfies, every value outside does not.
        for v in 0..64u64 {
            let exact = enc.exact(&mut m, v);
            let inside = m.and(exact, b);
            assert_eq!(m.is_satisfiable(inside), (5..=17).contains(&v), "v={v}");
        }
    }

    #[test]
    fn full_range_is_true() {
        let enc = FieldEncoder::new(0, 8);
        let mut m = BddManager::new(8);
        assert!(enc.range(&mut m, 0, 255).is_true());
    }

    #[test]
    fn single_value_range_equals_exact() {
        let enc = FieldEncoder::new(0, 5);
        let mut m = BddManager::new(5);
        for v in [0u64, 1, 15, 31] {
            let r = enc.range(&mut m, v, v);
            let e = enc.exact(&mut m, v);
            assert!(m.equivalent(r, e), "v={v}");
        }
    }

    #[test]
    fn layout_packs_fields_contiguously() {
        let layout = FieldLayout::new(&[3, 5, 2]);
        assert_eq!(layout.total_vars(), 10);
        assert_eq!(layout.num_fields(), 3);
        assert_eq!(layout.field(0).first_var, 0);
        assert_eq!(layout.field(1).first_var, 3);
        assert_eq!(layout.field(2).first_var, 8);
        assert_eq!(layout.field(2).end_var(), 10);
    }

    #[test]
    fn layout_fields_are_independent() {
        let layout = FieldLayout::new(&[4, 4]);
        let mut m = layout.manager();
        let a = layout.field(0).exact(&mut m, 5);
        let b = layout.field(1).exact(&mut m, 12);
        let both = m.and(a, b);
        assert_eq!(m.sat_count(both), 1.0);
        let model = m.any_sat(both).unwrap();
        assert_eq!(layout.field(0).decode(&model), 5);
        assert_eq!(layout.field(1).decode(&model), 12);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn exact_rejects_oversized_value() {
        let enc = FieldEncoder::new(0, 3);
        let mut m = BddManager::new(3);
        let _ = enc.exact(&mut m, 8);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn range_rejects_inverted_bounds() {
        let enc = FieldEncoder::new(0, 3);
        let mut m = BddManager::new(3);
        let _ = enc.range(&mut m, 5, 2);
    }

    #[test]
    fn max_value_matches_width() {
        assert_eq!(FieldEncoder::new(0, 1).max_value(), 1);
        assert_eq!(FieldEncoder::new(0, 16).max_value(), 65535);
        assert_eq!(FieldEncoder::new(0, 64).max_value(), u64::MAX);
    }
}
