//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no crates.io registry, so this
//! crate provides the (small) subset of the rand 0.8 API the scout crates
//! actually use — [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by a deterministic
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! The generator is *not* cryptographically secure and the stream differs from
//! the real `rand::rngs::StdRng`; everything in this workspace treats seeded
//! randomness as "arbitrary but reproducible", which this crate guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of every random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut state = [0u64; 4];
            for word in &mut state {
                *word = Self::splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state.
            if state == [0; 4] {
                state[0] = 0x9e3779b97f4a7c15;
            }
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Uniform index into `0..n` usable with unsized generators.
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (rng.next_u64() % n as u64) as usize
    }

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(gen_index(rng, self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(5u32..=5);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
