//! Object-level fault injection with ground truth.
//!
//! The paper's evaluation (§VI-A) injects two kinds of faults that make the
//! deployed TCAM state inconsistent with the policy:
//!
//! * a **full object fault** removes every TCAM rule associated with a policy
//!   object, on every switch;
//! * a **partial object fault** removes only a subset of the rules associated
//!   with the object, so that only some of the dependent EPG pairs break.
//!
//! Both are injected *silently* (no fault log — the failure is in the policy
//! deployment, not the hardware), but a `Modify` entry is recorded in the
//! controller change log for the faulty object, reflecting the paper's premise
//! that such inconsistencies follow recent operations on the object (§IV-B).

use std::collections::{BTreeMap, BTreeSet};

use rand::seq::SliceRandom;
use rand::Rng;

use scout_fabric::Fabric;
use scout_policy::{LogicalRule, ObjectId, SwitchId};

/// The kind of an injected object fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectFaultKind {
    /// All TCAM rules associated with the object are missing.
    Full,
    /// Only some of the TCAM rules associated with the object are missing.
    Partial,
}

/// One injected object fault, as recorded in the ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The faulty policy object.
    pub object: ObjectId,
    /// Whether the fault is full or partial.
    pub kind: ObjectFaultKind,
    /// Switches from which rules were removed.
    pub switches: BTreeSet<SwitchId>,
    /// Number of TCAM rules removed.
    pub removed_rules: usize,
    /// The logical rules whose TCAM renderings this fault actually removed —
    /// the exact restoration set a repair must re-push. Rules already missing
    /// when the fault landed (e.g. removed by an earlier overlapping fault)
    /// are *not* listed: they belong to the fault that removed them.
    pub removed: Vec<LogicalRule>,
}

/// The ground truth of an experiment run: the set of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    faults: Vec<InjectedFault>,
}

impl GroundTruth {
    /// The injected faults in injection order.
    pub fn faults(&self) -> &[InjectedFault] {
        &self.faults
    }

    /// The set of truly faulty objects (the set `G` used for precision and
    /// recall in §VI).
    pub fn objects(&self) -> BTreeSet<ObjectId> {
        self.faults.iter().map(|f| f.object).collect()
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Total number of rules removed across all faults.
    pub fn removed_rules(&self) -> usize {
        self.faults.iter().map(|f| f.removed_rules).sum()
    }

    fn push(&mut self, fault: InjectedFault) {
        self.faults.push(fault);
    }
}

/// Deterministic, seeded injector of object-level faults into a [`Fabric`].
#[derive(Debug)]
pub struct FaultInjector<R> {
    rng: R,
}

impl<R: Rng> FaultInjector<R> {
    /// Creates an injector driven by the given random number generator.
    ///
    /// Use a seeded RNG (e.g. `rand::rngs::StdRng::seed_from_u64`) for
    /// reproducible experiments.
    pub fn new(rng: R) -> Self {
        Self { rng }
    }

    /// Objects that can be made faulty: every policy object (VRF, EPG,
    /// contract, filter) that at least one compiled rule depends on.
    pub fn candidate_objects(fabric: &Fabric) -> Vec<ObjectId> {
        let mut candidates: BTreeSet<ObjectId> = BTreeSet::new();
        for rule in fabric.logical_rules() {
            candidates.extend(rule.provenance.policy_objects());
        }
        candidates.into_iter().collect()
    }

    /// Injects `count` simultaneous faults on distinct, randomly chosen policy
    /// objects, choosing full or partial with equal probability (as in §VI-A).
    ///
    /// Returns the ground truth. If fewer than `count` candidate objects
    /// exist, every candidate is made faulty.
    pub fn inject_object_faults(&mut self, fabric: &mut Fabric, count: usize) -> GroundTruth {
        self.inject_object_faults_where(fabric, count, None)
    }

    /// Like [`FaultInjector::inject_object_faults`], but every injected fault
    /// has the given kind — the campaign engine uses this to build pure
    /// full-fault and pure partial-fault scenario populations, matching the
    /// per-kind accuracy splits of the paper's Figures 7 and 8.
    pub fn inject_object_faults_of(
        &mut self,
        fabric: &mut Fabric,
        count: usize,
        kind: ObjectFaultKind,
    ) -> GroundTruth {
        self.inject_object_faults_where(fabric, count, Some(kind))
    }

    fn inject_object_faults_where(
        &mut self,
        fabric: &mut Fabric,
        count: usize,
        forced: Option<ObjectFaultKind>,
    ) -> GroundTruth {
        let mut candidates = Self::candidate_objects(fabric);
        candidates.shuffle(&mut self.rng);
        let mut truth = GroundTruth::default();
        for object in candidates.into_iter().take(count) {
            let kind = forced.unwrap_or_else(|| {
                if self.rng.gen_bool(0.5) {
                    ObjectFaultKind::Full
                } else {
                    ObjectFaultKind::Partial
                }
            });
            if let Some(fault) = self.inject_fault_on(fabric, object, kind) {
                truth.push(fault);
            }
        }
        truth
    }

    /// Injects one fault of the given kind on a specific object.
    ///
    /// Returns `None` if no deployed rule depends on the object (nothing to
    /// break). The affected TCAM rules are removed silently and a `Modify`
    /// change-log entry is recorded for the object.
    pub fn inject_fault_on(
        &mut self,
        fabric: &mut Fabric,
        object: ObjectId,
        kind: ObjectFaultKind,
    ) -> Option<InjectedFault> {
        let associated = rules_for_object(fabric.logical_rules(), object);
        if associated.is_empty() {
            return None;
        }
        let victims: Vec<LogicalRule> = match kind {
            ObjectFaultKind::Full => associated,
            ObjectFaultKind::Partial => {
                let mut shuffled = associated;
                shuffled.shuffle(&mut self.rng);
                // Remove between 1 and len-1 rules (at least one survivor when
                // possible) so the hit ratio of the object stays below 1.
                let upper = shuffled.len().saturating_sub(1).max(1);
                let take = self.rng.gen_range(1..=upper);
                shuffled.truncate(take);
                shuffled
            }
        };

        record_change(fabric, object);

        let mut switches = BTreeSet::new();
        let mut removed = Vec::new();
        let mut removed_count = 0usize;
        let mut by_switch: BTreeMap<SwitchId, Vec<LogicalRule>> = BTreeMap::new();
        for rule in victims {
            by_switch.entry(rule.switch).or_default().push(rule);
        }
        for (switch, rules) in by_switch {
            let targets: BTreeSet<scout_policy::TcamRule> = rules.iter().map(|r| r.rule).collect();
            let gone: BTreeSet<scout_policy::TcamRule> = fabric
                .remove_tcam_rules_where(switch, |r| targets.contains(r))
                .into_iter()
                .collect();
            if !gone.is_empty() {
                switches.insert(switch);
                removed_count += gone.len();
                removed.extend(rules.into_iter().filter(|r| gone.contains(&r.rule)));
            }
        }

        Some(InjectedFault {
            object,
            kind,
            switches,
            removed_rules: removed_count,
            removed,
        })
    }
}

/// The logical rules whose provenance (including the deployment switch)
/// involves `object`.
pub fn rules_for_object(logical_rules: &[LogicalRule], object: ObjectId) -> Vec<LogicalRule> {
    logical_rules
        .iter()
        .filter(|r| r.objects().contains(&object))
        .copied()
        .collect()
}

/// Records a `Modify` change-log entry for a faulty object, advancing the
/// simulated clock so the entry is the most recent action on the object.
fn record_change(fabric: &mut Fabric, object: ObjectId) {
    let t = fabric.advance_time(1);
    // The fabric owns the change log; reuse its API through a small detour:
    // `Fabric` exposes no direct change-log writer (the controller writes it),
    // so the injector emulates an admin-triggered modification by going
    // through the dedicated hook below.
    fabric.record_admin_change(t, object, "fault-injection: object modified");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scout_equiv::EquivalenceChecker;
    use scout_policy::sample;

    fn deployed() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    fn injector(seed: u64) -> FaultInjector<StdRng> {
        FaultInjector::new(StdRng::seed_from_u64(seed))
    }

    #[test]
    fn candidates_are_the_policy_objects_with_rules() {
        let fabric = deployed();
        let candidates = FaultInjector::<StdRng>::candidate_objects(&fabric);
        // 1 VRF + 3 EPGs + 2 contracts + 2 filters = 8 (switches are physical,
        // not object-fault candidates, but appear via objects()).
        assert!(candidates.contains(&ObjectId::Filter(sample::F_700)));
        assert!(candidates.contains(&ObjectId::Vrf(sample::VRF)));
        assert_eq!(candidates.iter().filter(|o| !o.is_switch()).count(), 8);
    }

    #[test]
    fn full_fault_removes_every_associated_rule() {
        let mut fabric = deployed();
        let mut inj = injector(1);
        let fault = inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Filter(sample::F_700),
                ObjectFaultKind::Full,
            )
            .unwrap();
        assert_eq!(fault.removed_rules, 4); // 2 on S2 + 2 on S3
        assert_eq!(fault.switches, BTreeSet::from([sample::S2, sample::S3]));
        // The checker sees exactly those rules as missing.
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert_eq!(result.missing_count(), 4);
        assert!(result
            .missing_rules()
            .all(|r| r.provenance.filter == sample::F_700));
    }

    #[test]
    fn partial_fault_leaves_some_rules_behind() {
        let mut fabric = deployed();
        let mut inj = injector(7);
        let before: usize = fabric.collect_tcam().values().map(|v| v.len()).sum();
        let fault = inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Vrf(sample::VRF),
                ObjectFaultKind::Partial,
            )
            .unwrap();
        let after: usize = fabric.collect_tcam().values().map(|v| v.len()).sum();
        assert!(fault.removed_rules >= 1);
        assert!(
            fault.removed_rules < 12,
            "partial fault must not remove everything"
        );
        assert_eq!(before - after, fault.removed_rules);
    }

    #[test]
    fn injection_records_a_change_log_entry() {
        let mut fabric = deployed();
        let entries_before = fabric.change_log().len();
        let mut inj = injector(3);
        inj.inject_fault_on(
            &mut fabric,
            ObjectId::Filter(sample::F_HTTP),
            ObjectFaultKind::Full,
        )
        .unwrap();
        assert_eq!(fabric.change_log().len(), entries_before + 1);
        let last = fabric
            .change_log()
            .last_entry_for(ObjectId::Filter(sample::F_HTTP))
            .unwrap();
        assert_eq!(last.action, scout_fabric::ChangeAction::Modify);
    }

    #[test]
    fn inject_object_faults_produces_distinct_ground_truth() {
        let mut fabric = deployed();
        let mut inj = injector(11);
        let truth = inj.inject_object_faults(&mut fabric, 3);
        assert_eq!(truth.len(), 3);
        assert_eq!(truth.objects().len(), 3);
        assert!(truth.removed_rules() >= 3);
        assert!(!truth.is_empty());
        // Injected objects are genuine policy objects.
        assert!(truth.objects().iter().all(|o| !o.is_switch()));
    }

    #[test]
    fn forced_kind_injection_only_produces_that_kind() {
        for kind in [ObjectFaultKind::Full, ObjectFaultKind::Partial] {
            let mut fabric = deployed();
            let mut inj = injector(13);
            let truth = inj.inject_object_faults_of(&mut fabric, 3, kind);
            assert_eq!(truth.len(), 3);
            assert!(truth.faults().iter().all(|f| f.kind == kind), "{kind:?}");
        }
        // Full faults remove every rule of the object; the checker agrees.
        let mut fabric = deployed();
        let mut inj = injector(13);
        let truth = inj.inject_object_faults_of(&mut fabric, 1, ObjectFaultKind::Full);
        let object = truth.faults()[0].object;
        let still_there = rules_for_object(fabric.logical_rules(), object)
            .iter()
            .filter(|r| fabric.tcam_rules(r.switch).contains(&r.rule))
            .count();
        assert_eq!(still_there, 0);
    }

    #[test]
    fn requesting_more_faults_than_objects_injects_all_candidates() {
        let mut fabric = deployed();
        let mut inj = injector(5);
        let truth = inj.inject_object_faults(&mut fabric, 100);
        assert_eq!(truth.len(), 8);
    }

    #[test]
    fn fault_on_object_without_rules_returns_none() {
        let mut fabric = Fabric::new(sample::three_tier());
        // Not deployed yet: logical rules are empty.
        let mut inj = injector(2);
        assert!(inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Filter(sample::F_700),
                ObjectFaultKind::Full
            )
            .is_none());
    }

    #[test]
    fn injection_is_deterministic_for_a_seed() {
        let run = |seed| {
            let mut fabric = deployed();
            let mut inj = injector(seed);
            let truth = inj.inject_object_faults(&mut fabric, 4);
            (truth.objects(), truth.removed_rules())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn rules_for_object_matches_provenance() {
        let fabric = deployed();
        let rules = rules_for_object(fabric.logical_rules(), ObjectId::Epg(sample::WEB));
        // Web participates only in the Web-App pair: 2 rules on S1 + 2 on S2.
        assert_eq!(rules.len(), 4);
        let rules = rules_for_object(fabric.logical_rules(), ObjectId::Switch(sample::S1));
        assert_eq!(rules.len(), 2);
    }
}
