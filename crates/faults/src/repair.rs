//! Repair actions: the inverse of fault injection.
//!
//! The paper pitches SCOUT as a *continuous* monitor, which implies a fault
//! lifecycle: faults are injected, detected, localized and eventually fixed by
//! an operator, after which the monitor must observe the network converging
//! back to a consistent state. These helpers close the loop for every fault
//! class the crate can inject:
//!
//! * an **object fault** is repaired by re-pushing exactly the logical rules
//!   it removed ([`repair_object_fault`]), mirroring an admin re-deploying the
//!   faulty object;
//! * a **physical fault** is repaired by restoring the whole switch
//!   ([`repair_physical_fault`]): reconnect, restart, drop corrupted garbage,
//!   re-sync the TCAM against the compiled policy.
//!
//! Every repair emits a pre-cleared [`scout_fabric::FaultKind::Repair`] audit
//! event via the fabric, and none of them touches the controller change log —
//! repairs restore deployed state, they are not policy changes.

use scout_fabric::{Fabric, RepairReport};

use crate::object_faults::InjectedFault;
use crate::physical::PhysicalFault;

/// Repairs an injected object fault by re-installing the exact logical rules
/// it removed.
///
/// Rules that a later policy edit removed from the compiled policy are
/// skipped (they are no longer supposed to exist); rules another fault also
/// lost stay missing until *that* fault is repaired, because
/// [`InjectedFault::removed`] only lists the rules this fault itself took
/// out. The repair can fail partially — e.g. if the rule's switch is
/// disconnected or crashed — in which case the returned report's
/// [`RepairReport::failed`] is non-zero and the fault is still active.
pub fn repair_object_fault(fabric: &mut Fabric, fault: &InjectedFault) -> RepairReport {
    fabric.reinstall_rules(&fault.removed)
}

/// Repairs a physical fault by fully restoring the switch it hit:
/// reconnects the control channel, restarts the agent, removes TCAM entries
/// no compiled rule expects (corruption garbage) and re-installs every
/// missing rule of the switch.
///
/// This is deliberately switch-scoped rather than rule-scoped — a hardware
/// swap or an agent restart re-syncs the whole device — so it also heals the
/// local footprint of any *other* fault active on the same switch. Callers
/// tracking per-fault ground truth should reconcile their bookkeeping against
/// the fabric afterwards (the soak engine in `scout-sim` does exactly that).
pub fn repair_physical_fault(fabric: &mut Fabric, fault: &PhysicalFault) -> RepairReport {
    fabric.repair_switch(fault.switch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_faults::{FaultInjector, ObjectFaultKind};
    use crate::physical::{random_tcam_corruption, silent_rule_eviction, unresponsive_switch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scout_equiv::EquivalenceChecker;
    use scout_policy::{sample, ObjectId};

    fn deployed() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    fn missing_count(fabric: &Fabric) -> usize {
        EquivalenceChecker::new()
            .check_network(fabric.logical_rules(), &fabric.collect_tcam())
            .missing_count()
    }

    #[test]
    fn object_fault_repair_restores_consistency() {
        let mut fabric = deployed();
        let mut inj = FaultInjector::new(StdRng::seed_from_u64(1));
        let fault = inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Filter(sample::F_700),
                ObjectFaultKind::Full,
            )
            .unwrap();
        assert_eq!(fault.removed.len(), fault.removed_rules);
        assert_eq!(missing_count(&fabric), 4);

        let report = repair_object_fault(&mut fabric, &fault);
        assert_eq!(report.reinstalled, 4);
        assert_eq!(report.failed, 0);
        assert_eq!(missing_count(&fabric), 0);
    }

    #[test]
    fn overlapping_faults_record_disjoint_restoration_sets() {
        let mut fabric = deployed();
        let mut inj = FaultInjector::new(StdRng::seed_from_u64(5));
        // The VRF fault takes every rule; a subsequent full fault on the
        // port-700 filter finds its rules already gone and records nothing.
        let vrf_fault = inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Vrf(sample::VRF),
                ObjectFaultKind::Full,
            )
            .unwrap();
        let filter_fault = inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Filter(sample::F_700),
                ObjectFaultKind::Full,
            )
            .unwrap();
        assert!(
            filter_fault.removed.is_empty(),
            "rules already gone belong to the VRF fault"
        );
        assert_eq!(filter_fault.removed_rules, 0);
        assert_eq!(vrf_fault.removed.len(), 12);

        // Repairing the VRF fault therefore restores everything.
        let report = repair_object_fault(&mut fabric, &vrf_fault);
        assert_eq!(report.reinstalled, 12);
        assert_eq!(missing_count(&fabric), 0);
    }

    #[test]
    fn partial_overlap_keeps_the_other_faults_rules_missing() {
        let mut fabric = deployed();
        let mut inj = FaultInjector::new(StdRng::seed_from_u64(9));
        // F_700 removes its 4 rules first; the App-DB contract covers those 4
        // plus the 4 port-80 App-DB rules, so its fault only records the rest.
        let filter_fault = inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Filter(sample::F_700),
                ObjectFaultKind::Full,
            )
            .unwrap();
        let contract_fault = inj
            .inject_fault_on(
                &mut fabric,
                ObjectId::Contract(sample::C_APP_DB),
                ObjectFaultKind::Full,
            )
            .unwrap();
        assert_eq!(filter_fault.removed.len(), 4);
        assert_eq!(contract_fault.removed.len(), 4);
        assert_eq!(missing_count(&fabric), 8);

        // Repairing only the contract fault leaves the filter's rules missing.
        repair_object_fault(&mut fabric, &contract_fault);
        assert_eq!(missing_count(&fabric), 4);
        repair_object_fault(&mut fabric, &filter_fault);
        assert_eq!(missing_count(&fabric), 0);
    }

    #[test]
    fn physical_repairs_restore_corruption_eviction_and_disconnects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fabric = deployed();
        let corruption = random_tcam_corruption(&mut fabric, sample::S2, 2, &mut rng);
        let eviction = silent_rule_eviction(&mut fabric, sample::S3, 2);
        assert!(missing_count(&fabric) >= 3);

        let report = repair_physical_fault(&mut fabric, &corruption);
        assert!(report.garbage_removed >= 1);
        let report = repair_physical_fault(&mut fabric, &eviction);
        assert_eq!(report.reinstalled, 2);
        assert_eq!(missing_count(&fabric), 0);

        // An unresponsive switch that missed a re-sync is healed the same way.
        let flap = unresponsive_switch(&mut fabric, sample::S2);
        fabric.remove_tcam_rules_where(sample::S2, |_| true);
        fabric.resync(); // lost: the channel is down
        assert_eq!(missing_count(&fabric), 6);
        repair_physical_fault(&mut fabric, &flap);
        assert_eq!(missing_count(&fabric), 0);
        assert!(fabric.fault_log().active_at(fabric.now()).is_empty());
    }
}
