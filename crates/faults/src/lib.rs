//! # scout-faults
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! Fault injection for the SCOUT reproduction (ICDCS 2018).
//!
//! The evaluation of the paper (§VI) injects faults that make the deployed
//! TCAM state diverge from the network policy and then measures how well the
//! localization algorithms recover the truly faulty objects. This crate
//! provides:
//!
//! * [`FaultInjector`] — seeded injection of *full* and *partial* object
//!   faults (§VI-A) with [`GroundTruth`] bookkeeping for precision/recall;
//! * the [`physical`] module — the named physical-level scenarios of §V-B
//!   (unresponsive switch, agent crash mid-update, TCAM corruption, silent
//!   rule eviction).
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use scout_fabric::Fabric;
//! use scout_faults::FaultInjector;
//! use scout_policy::sample;
//!
//! let mut fabric = Fabric::new(sample::three_tier());
//! fabric.deploy();
//! let mut injector = FaultInjector::new(StdRng::seed_from_u64(7));
//! let truth = injector.inject_object_faults(&mut fabric, 2);
//! assert_eq!(truth.objects().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model_faults;
pub mod object_faults;
pub mod physical;
pub mod repair;

pub use model_faults::{
    candidate_objects_on_switch, synthesize_fault_on, synthesize_fault_on_switch,
    synthesize_object_faults, synthesize_switch_scoped_faults, synthetic_change_log,
    SyntheticFaults, Violation,
};
pub use object_faults::{
    rules_for_object, FaultInjector, GroundTruth, InjectedFault, ObjectFaultKind,
};
pub use physical::{
    agent_crash_mid_update, random_tcam_corruption, silent_rule_eviction, unresponsive_switch,
    PhysicalFault,
};
pub use repair::{repair_object_fault, repair_physical_fault};
