//! Model-level fault synthesis for large-scale simulation experiments.
//!
//! The accuracy experiments of the paper (Figures 8 and 9) run over risk
//! models built from a production-cluster policy with up to tens of thousands
//! of EPG pairs. Deploying such a policy through the full fabric simulator and
//! re-running the BDD equivalence check for every experiment repetition would
//! dominate the running time without changing the outcome: what the
//! localization algorithms consume is only *which edges of the risk model are
//! marked failed*. This module therefore synthesizes object faults directly at
//! the risk-model level:
//!
//! * a **full** fault marks every `(switch, pair, contract, filter)`
//!   combination that depends on the object as violated;
//! * a **partial** fault marks a random strict subset of those combinations.
//!
//! The synthesized [`Violation`]s carry exactly the objects a missing rule's
//! provenance would carry, so augmenting a risk model with them is equivalent
//! to augmenting it with the missing rules the equivalence checker would have
//! produced (this equivalence is asserted by an integration test).

use std::collections::BTreeSet;

use rand::seq::SliceRandom;
use rand::Rng;

use scout_core::RiskModel;
use scout_fabric::{ChangeAction, ChangeLog, Timestamp};
use scout_policy::{EpgPair, ObjectId, PolicyUniverse, SwitchEpgPair, SwitchId};

use crate::object_faults::ObjectFaultKind;

/// One synthesized policy violation: the equivalent of one missing TCAM rule
/// group for a `(switch, pair)` element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The switch the missing rules belong to.
    pub switch: SwitchId,
    /// The EPG pair whose traffic is affected.
    pub pair: EpgPair,
    /// The policy objects in the violation (VRF, both EPGs, contract, filter).
    pub objects: BTreeSet<ObjectId>,
}

/// The outcome of synthesizing faults for a set of objects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyntheticFaults {
    /// The truly faulty objects (ground truth `G`).
    pub objects: BTreeSet<ObjectId>,
    /// The synthesized violations.
    pub violations: Vec<Violation>,
}

impl SyntheticFaults {
    /// Returns `true` if no violations were produced.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Applies the violations to a controller risk model (marks the edges from
    /// each `(switch, pair)` triplet to the violation's objects plus the switch
    /// as failed).
    pub fn apply_to_controller_model(&self, model: &mut RiskModel<SwitchEpgPair>) {
        for v in &self.violations {
            let element = SwitchEpgPair::new(v.switch, v.pair);
            for &obj in &v.objects {
                model.mark_failed(element, obj);
            }
            model.mark_failed(element, ObjectId::Switch(v.switch));
        }
    }

    /// Applies the violations concerning `switch` to its switch risk model.
    pub fn apply_to_switch_model(&self, model: &mut RiskModel<EpgPair>, switch: SwitchId) {
        for v in self.violations.iter().filter(|v| v.switch == switch) {
            for &obj in &v.objects {
                model.mark_failed(v.pair, obj);
            }
        }
    }

    /// The switches that have at least one violation.
    pub fn affected_switches(&self) -> BTreeSet<SwitchId> {
        self.violations.iter().map(|v| v.switch).collect()
    }
}

/// All `(switch, pair, violation-objects)` combinations that depend on
/// `object` in `universe`.
fn combinations_for_object(universe: &PolicyUniverse, object: ObjectId) -> Vec<Violation> {
    let mut combos = Vec::new();
    for binding in universe.bindings() {
        let Some(consumer) = universe.epg(binding.consumer) else {
            continue;
        };
        let vrf = consumer.vrf;
        let pair = EpgPair::new(binding.consumer, binding.provider);
        let Some(contract) = universe.contract(binding.contract) else {
            continue;
        };
        for &filter in &contract.filters {
            let objects: BTreeSet<ObjectId> = [
                ObjectId::Vrf(vrf),
                ObjectId::Epg(binding.consumer),
                ObjectId::Epg(binding.provider),
                ObjectId::Contract(binding.contract),
                ObjectId::Filter(filter),
            ]
            .into_iter()
            .collect();
            let involves_object = match object {
                ObjectId::Switch(_) => true,
                other => objects.contains(&other),
            };
            if !involves_object {
                continue;
            }
            for switch in universe.switches_for_pair(pair) {
                if let ObjectId::Switch(target) = object {
                    if switch != target {
                        continue;
                    }
                }
                combos.push(Violation {
                    switch,
                    pair,
                    objects: objects.clone(),
                });
            }
        }
    }
    combos
}

/// Synthesizes one fault of the given kind on `object`.
///
/// Returns `None` if nothing in the policy depends on the object. Partial
/// faults keep at least one combination intact whenever more than one exists.
pub fn synthesize_fault_on<R: Rng>(
    universe: &PolicyUniverse,
    object: ObjectId,
    kind: ObjectFaultKind,
    rng: &mut R,
) -> Option<Vec<Violation>> {
    let combos = combinations_for_object(universe, object);
    reduce_combinations(combos, kind, rng)
}

/// Synthesizes one fault of the given kind on `object`, restricted to the
/// deployment of the object on a single `switch` — the setting of the
/// switch-risk-model experiment (Figure 8), where a policy object fails to be
/// rendered correctly on one particular switch.
pub fn synthesize_fault_on_switch<R: Rng>(
    universe: &PolicyUniverse,
    object: ObjectId,
    switch: SwitchId,
    kind: ObjectFaultKind,
    rng: &mut R,
) -> Option<Vec<Violation>> {
    let combos: Vec<Violation> = combinations_for_object(universe, object)
        .into_iter()
        .filter(|v| v.switch == switch)
        .collect();
    reduce_combinations(combos, kind, rng)
}

fn reduce_combinations<R: Rng>(
    mut combos: Vec<Violation>,
    kind: ObjectFaultKind,
    rng: &mut R,
) -> Option<Vec<Violation>> {
    if combos.is_empty() {
        return None;
    }
    match kind {
        ObjectFaultKind::Full => Some(combos),
        ObjectFaultKind::Partial => {
            combos.shuffle(rng);
            let upper = combos.len().saturating_sub(1).max(1);
            let take = rng.gen_range(1..=upper);
            combos.truncate(take);
            Some(combos)
        }
    }
}

/// Policy objects (never switches) that have at least one deployable
/// `(binding, filter)` combination on `switch` — the fault candidates of the
/// switch-scoped experiment.
pub fn candidate_objects_on_switch(universe: &PolicyUniverse, switch: SwitchId) -> Vec<ObjectId> {
    let mut used: BTreeSet<ObjectId> = BTreeSet::new();
    let local_pairs = universe.pairs_on_switch(switch);
    for binding in universe.bindings() {
        let pair = EpgPair::new(binding.consumer, binding.provider);
        if !local_pairs.contains(&pair) {
            continue;
        }
        if let Some(consumer) = universe.epg(binding.consumer) {
            used.insert(ObjectId::Vrf(consumer.vrf));
        }
        used.insert(ObjectId::Epg(binding.consumer));
        used.insert(ObjectId::Epg(binding.provider));
        used.insert(ObjectId::Contract(binding.contract));
        if let Some(contract) = universe.contract(binding.contract) {
            for &filter in &contract.filters {
                used.insert(ObjectId::Filter(filter));
            }
        }
    }
    used.into_iter().collect()
}

/// Chooses `count` distinct faulty policy objects among those deployed on
/// `switch`, makes each fail (fully or partially, equal probability) *on that
/// switch only*, and synthesizes the corresponding violations.
pub fn synthesize_switch_scoped_faults<R: Rng>(
    universe: &PolicyUniverse,
    switch: SwitchId,
    count: usize,
    rng: &mut R,
) -> SyntheticFaults {
    let mut candidates = candidate_objects_on_switch(universe, switch);
    candidates.shuffle(rng);
    let mut result = SyntheticFaults::default();
    for object in candidates.into_iter().take(count) {
        let kind = if rng.gen_bool(0.5) {
            ObjectFaultKind::Full
        } else {
            ObjectFaultKind::Partial
        };
        if let Some(violations) = synthesize_fault_on_switch(universe, object, switch, kind, rng) {
            result.objects.insert(object);
            result.violations.extend(violations);
        }
    }
    result
}

/// Chooses `count` distinct faulty policy objects (never switches) uniformly at
/// random, picks full or partial with equal probability, and synthesizes their
/// violations.
pub fn synthesize_object_faults<R: Rng>(
    universe: &PolicyUniverse,
    count: usize,
    rng: &mut R,
) -> SyntheticFaults {
    // Candidate objects: every policy object that at least one deployable
    // (binding, filter) combination depends on, collected in a single pass
    // over the bindings so that large policies stay cheap to sample from.
    let mut used: BTreeSet<ObjectId> = BTreeSet::new();
    for binding in universe.bindings() {
        let pair = scout_policy::EpgPair::new(binding.consumer, binding.provider);
        if universe.switches_for_pair(pair).is_empty() {
            continue;
        }
        if let Some(consumer) = universe.epg(binding.consumer) {
            used.insert(ObjectId::Vrf(consumer.vrf));
        }
        used.insert(ObjectId::Epg(binding.consumer));
        used.insert(ObjectId::Epg(binding.provider));
        used.insert(ObjectId::Contract(binding.contract));
        if let Some(contract) = universe.contract(binding.contract) {
            for &filter in &contract.filters {
                used.insert(ObjectId::Filter(filter));
            }
        }
    }
    let mut candidates: Vec<ObjectId> = used.into_iter().collect();
    candidates.shuffle(rng);

    let mut result = SyntheticFaults::default();
    for object in candidates.into_iter().take(count) {
        let kind = if rng.gen_bool(0.5) {
            ObjectFaultKind::Full
        } else {
            ObjectFaultKind::Partial
        };
        if let Some(violations) = synthesize_fault_on(universe, object, kind, rng) {
            result.objects.insert(object);
            result.violations.extend(violations);
        }
    }
    result
}

/// Builds a synthetic controller change log consistent with the synthesized
/// faults: every object is created at deployment time, and each faulty object
/// has a recent `Modify` entry (the operation whose deployment went wrong).
pub fn synthetic_change_log(universe: &PolicyUniverse, faults: &SyntheticFaults) -> ChangeLog {
    let mut log = ChangeLog::new();
    let mut t = 0u64;
    for object in universe.all_objects() {
        if object.is_switch() {
            continue;
        }
        t += 1;
        log.record(
            Timestamp::new(t),
            object,
            ChangeAction::Create,
            None,
            "initial deployment",
        );
    }
    // Recent modifications of the faulty objects, well after deployment.
    let mut recent = t + 1_000;
    for &object in &faults.objects {
        recent += 1;
        log.record(
            Timestamp::new(recent),
            object,
            ChangeAction::Modify,
            None,
            "recent operation preceding the deployment failure",
        );
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scout_core::{controller_risk_model, switch_risk_model};
    use scout_policy::sample;

    #[test]
    fn full_fault_marks_every_dependent_element() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(1);
        let violations = synthesize_fault_on(
            &u,
            ObjectId::Filter(sample::F_700),
            ObjectFaultKind::Full,
            &mut rng,
        )
        .unwrap();
        // Filter 700 is used by the App-DB pair, deployed on S2 and S3.
        assert_eq!(violations.len(), 2);
        let mut model = controller_risk_model(&u);
        let faults = SyntheticFaults {
            objects: BTreeSet::from([ObjectId::Filter(sample::F_700)]),
            violations,
        };
        faults.apply_to_controller_model(&mut model);
        assert_eq!(model.failure_signature().len(), 2);
        assert_eq!(model.hit_ratio(ObjectId::Filter(sample::F_700)), 1.0);
        assert!(model.hit_ratio(ObjectId::Vrf(sample::VRF)) < 1.0);
    }

    #[test]
    fn partial_fault_leaves_some_combinations_intact() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(5);
        let violations = synthesize_fault_on(
            &u,
            ObjectId::Vrf(sample::VRF),
            ObjectFaultKind::Partial,
            &mut rng,
        )
        .unwrap();
        let all = combinations_for_object(&u, ObjectId::Vrf(sample::VRF));
        assert!(!violations.is_empty());
        assert!(violations.len() < all.len());
    }

    #[test]
    fn switch_fault_is_restricted_to_the_switch() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(2);
        let violations = synthesize_fault_on(
            &u,
            ObjectId::Switch(sample::S2),
            ObjectFaultKind::Full,
            &mut rng,
        )
        .unwrap();
        assert!(violations.iter().all(|v| v.switch == sample::S2));
        // Both pairs are deployed on S2, each with its filters: 1 (Web-App)
        // + 2 (App-DB) = 3 combinations.
        assert_eq!(violations.len(), 3);
    }

    #[test]
    fn apply_to_switch_model_only_touches_that_switch() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(3);
        let violations = synthesize_fault_on(
            &u,
            ObjectId::Filter(sample::F_700),
            ObjectFaultKind::Full,
            &mut rng,
        )
        .unwrap();
        let faults = SyntheticFaults {
            objects: BTreeSet::from([ObjectId::Filter(sample::F_700)]),
            violations,
        };
        let mut s2 = switch_risk_model(&u, sample::S2);
        faults.apply_to_switch_model(&mut s2, sample::S2);
        assert_eq!(s2.failure_signature().len(), 1);
        let mut s1 = switch_risk_model(&u, sample::S1);
        faults.apply_to_switch_model(&mut s1, sample::S1);
        assert!(s1.failure_signature().is_empty());
        assert_eq!(
            faults.affected_switches(),
            BTreeSet::from([sample::S2, sample::S3])
        );
    }

    #[test]
    fn switch_scoped_fault_only_touches_that_switch() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(8);
        // Filter 700 is deployed on S2 and S3; scope the fault to S2 only.
        let violations = synthesize_fault_on_switch(
            &u,
            ObjectId::Filter(sample::F_700),
            sample::S2,
            ObjectFaultKind::Full,
            &mut rng,
        )
        .unwrap();
        assert_eq!(violations.len(), 1);
        assert!(violations.iter().all(|v| v.switch == sample::S2));
        // An object that is not deployed on the switch yields no fault.
        assert!(synthesize_fault_on_switch(
            &u,
            ObjectId::Epg(sample::WEB),
            sample::S3,
            ObjectFaultKind::Full,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn candidate_objects_on_switch_follow_deployment() {
        let u = sample::three_tier();
        // S1 hosts only the Web-App pair: 5 objects.
        let s1 = candidate_objects_on_switch(&u, sample::S1);
        assert_eq!(s1.len(), 5);
        assert!(s1.contains(&ObjectId::Epg(sample::WEB)));
        assert!(!s1.contains(&ObjectId::Filter(sample::F_700)));
        // S2 hosts both pairs: all 8 policy objects.
        assert_eq!(candidate_objects_on_switch(&u, sample::S2).len(), 8);
    }

    #[test]
    fn switch_scoped_synthesis_produces_local_ground_truth() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(17);
        let faults = synthesize_switch_scoped_faults(&u, sample::S2, 3, &mut rng);
        assert_eq!(faults.objects.len(), 3);
        assert!(faults.violations.iter().all(|v| v.switch == sample::S2));
        assert_eq!(faults.affected_switches(), BTreeSet::from([sample::S2]));
    }

    #[test]
    fn synthesize_object_faults_has_distinct_ground_truth() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(11);
        let faults = synthesize_object_faults(&u, 3, &mut rng);
        assert_eq!(faults.objects.len(), 3);
        assert!(!faults.is_empty());
        assert!(faults.objects.iter().all(|o| !o.is_switch()));
    }

    #[test]
    fn synthetic_change_log_marks_faulty_objects_as_recent() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(4);
        let faults = synthesize_object_faults(&u, 2, &mut rng);
        let log = synthetic_change_log(&u, &faults);
        // 8 creation entries + 2 modifications.
        assert_eq!(log.len(), 10);
        for &obj in &faults.objects {
            let last = log.last_entry_for(obj).unwrap();
            assert_eq!(last.action, ChangeAction::Modify);
            assert!(last.time > Timestamp::new(100));
        }
    }

    #[test]
    fn synthesizing_fault_on_unused_object_returns_none() {
        let u = sample::three_tier();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(synthesize_fault_on(
            &u,
            ObjectId::Filter(scout_policy::FilterId::new(999)),
            ObjectFaultKind::Full,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let u = sample::three_tier();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            synthesize_object_faults(&u, 4, &mut rng)
        };
        assert_eq!(run(99), run(99));
    }
}
