//! Physical-level fault scenarios.
//!
//! These helpers wrap the raw fabric fault hooks into the named scenarios used
//! by the paper's use cases (§V-B) and by the evaluation: an unresponsive
//! switch, an agent crash mid-update, random TCAM corruption, and silent rule
//! eviction. Each scenario returns enough information to serve as ground truth
//! for accuracy measurements.

use std::collections::BTreeSet;

use rand::Rng;

use scout_fabric::{CorruptionKind, Fabric};
use scout_policy::{ObjectId, SwitchId, TcamRule};

/// The outcome of a physical fault scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalFault {
    /// The switch the fault was injected on.
    pub switch: SwitchId,
    /// Human-readable scenario name.
    pub scenario: &'static str,
    /// TCAM rules that disappeared or changed because of the fault.
    pub affected_rules: Vec<TcamRule>,
}

impl PhysicalFault {
    /// The policy objects affected by the fault: every object in the
    /// provenance of a logical rule whose TCAM rendering was affected,
    /// restricted to the faulty switch.
    pub fn affected_objects(&self, fabric: &Fabric) -> BTreeSet<ObjectId> {
        let affected: BTreeSet<TcamRule> = self.affected_rules.iter().copied().collect();
        fabric
            .logical_rules()
            .iter()
            .filter(|l| l.switch == self.switch && affected.contains(&l.rule))
            .flat_map(|l| l.provenance.policy_objects())
            .collect()
    }
}

/// Makes `switch` unresponsive (control channel disconnected). Instructions
/// pushed afterwards are lost; nothing already deployed is touched.
pub fn unresponsive_switch(fabric: &mut Fabric, switch: SwitchId) -> PhysicalFault {
    fabric.disconnect_switch(switch);
    PhysicalFault {
        switch,
        scenario: "unresponsive-switch",
        affected_rules: Vec::new(),
    }
}

/// Crashes the agent on `switch` after it applies `after` more instructions,
/// simulating a crash in the middle of a rule-update batch.
pub fn agent_crash_mid_update(fabric: &mut Fabric, switch: SwitchId, after: u64) -> PhysicalFault {
    fabric.crash_agent_after(switch, after);
    PhysicalFault {
        switch,
        scenario: "agent-crash-mid-update",
        affected_rules: Vec::new(),
    }
}

/// Corrupts `count` random TCAM entries on `switch` with random corruption
/// kinds. Corruption is silent: no fault log is produced.
pub fn random_tcam_corruption<R: Rng>(
    fabric: &mut Fabric,
    switch: SwitchId,
    count: usize,
    rng: &mut R,
) -> PhysicalFault {
    let mut affected = Vec::new();
    for _ in 0..count {
        let len = fabric.tcam_rules(switch).len();
        if len == 0 {
            break;
        }
        let index = rng.gen_range(0..len);
        let kind = CorruptionKind::ALL[rng.gen_range(0..CorruptionKind::ALL.len())];
        if let Some((original, _corrupted)) = fabric.corrupt_tcam(switch, index, kind) {
            affected.push(original);
        }
    }
    PhysicalFault {
        switch,
        scenario: "tcam-corruption",
        affected_rules: affected,
    }
}

/// Silently evicts the oldest `count` rules from `switch`'s TCAM.
pub fn silent_rule_eviction(fabric: &mut Fabric, switch: SwitchId, count: usize) -> PhysicalFault {
    let evicted = fabric.evict_tcam(switch, count, false);
    PhysicalFault {
        switch,
        scenario: "silent-rule-eviction",
        affected_rules: evicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scout_equiv::EquivalenceChecker;
    use scout_fabric::FaultKind;
    use scout_policy::sample;

    fn deployed() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    #[test]
    fn unresponsive_switch_blocks_future_updates_only() {
        let mut fabric = deployed();
        let before = fabric.tcam_rules(sample::S2).len();
        let fault = unresponsive_switch(&mut fabric, sample::S2);
        assert_eq!(fault.scenario, "unresponsive-switch");
        assert_eq!(fabric.tcam_rules(sample::S2).len(), before);
        assert_eq!(
            fabric
                .fault_log()
                .entries_of_kind(FaultKind::SwitchUnreachable)
                .len(),
            1
        );
        // A re-sync cannot repair the switch while it is unresponsive.
        fabric.remove_tcam_rules_where(sample::S2, |_| true);
        fabric.resync();
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 0);
    }

    #[test]
    fn corruption_affects_requested_number_of_rules() {
        let mut fabric = deployed();
        let mut rng = StdRng::seed_from_u64(9);
        let fault = random_tcam_corruption(&mut fabric, sample::S2, 3, &mut rng);
        assert_eq!(fault.affected_rules.len(), 3);
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert!(!result.is_consistent());
        // The affected objects come from the corrupted rules' provenance.
        let objs = fault.affected_objects(&fabric);
        assert!(!objs.is_empty());
        assert!(objs.iter().all(|o| !o.is_switch()));
    }

    #[test]
    fn corruption_on_empty_switch_is_a_noop() {
        let mut fabric = Fabric::new(sample::three_tier());
        let mut rng = StdRng::seed_from_u64(9);
        let fault = random_tcam_corruption(&mut fabric, sample::S2, 5, &mut rng);
        assert!(fault.affected_rules.is_empty());
    }

    #[test]
    fn eviction_reports_evicted_rules() {
        let mut fabric = deployed();
        let fault = silent_rule_eviction(&mut fabric, sample::S3, 2);
        assert_eq!(fault.affected_rules.len(), 2);
        assert_eq!(fabric.tcam_rules(sample::S3).len(), 2);
        // Silent: no fault log entry.
        assert!(fabric
            .fault_log()
            .entries_of_kind(FaultKind::RuleEviction)
            .is_empty());
        let objs = fault.affected_objects(&fabric);
        assert!(objs.contains(&ObjectId::Contract(sample::C_APP_DB)));
    }

    #[test]
    fn agent_crash_mid_update_arms_the_crash() {
        let mut fabric = Fabric::new(sample::three_tier());
        agent_crash_mid_update(&mut fabric, sample::S2, 3);
        fabric.deploy();
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 3);
        assert!(fabric.agent(sample::S2).unwrap().is_crashed());
        assert_eq!(
            fabric
                .fault_log()
                .entries_of_kind(FaultKind::AgentCrash)
                .len(),
            1
        );
    }
}
