//! The decode surfaces under test and the three oracles every input is
//! checked against.
//!
//! For each input buffer the oracle runs the surface's top-level decode and
//! demands:
//!
//! 1. **No panic, bounded allocation** — decoding runs under
//!    [`catch_unwind`] and the tracking allocator ([`crate::alloc`]); a panic
//!    or a heap peak beyond a budget linear in the input length is a
//!    failure. The budgets are generous (decoded structures legitimately
//!    expand: dependency indexes, recompiled rules) but strictly linear, so
//!    an attacker-controlled length prefix driving a huge pre-allocation
//!    still trips them.
//! 2. **Canonical acceptance** — every accepted input must re-encode to the
//!    exact bytes it arrived as (decode→encode→decode fixpoint). Anything
//!    else means two distinct byte strings alias one value.
//! 3. **Typed rejection** — every rejected input must surface as a
//!    [`WireError`](scout_fabric::WireError) /
//!    [`SnapshotError`](scout_core::SnapshotError) /
//!    [`JournalError`](scout_store::JournalError); `unwrap`/`expect` on the
//!    decode path shows up here as a panic.
//!
//! For [`Surface::Snapshot`], accepted values additionally go through
//! [`ScoutEngine::restore`] — the session-restore path must either produce a
//! live session or a typed `SessionError`, never panic.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use scout_core::{ScoutEngine, Snapshot};
use scout_fabric::wire::{from_bytes, to_bytes, Wire};
use scout_fabric::{ChangeLog, EventBatch, FabricView, FaultLog};
use scout_policy::{PolicyUniverse, SwitchId, TcamRule};
use scout_server::ServerRequest;
use scout_store::{decode_segment, Segment};

use crate::alloc;

/// Allocation budget, in bytes, for a decode that *rejects* its input: a
/// fixed floor plus a linear factor of the input length. Rejection can still
/// allocate — a mutated universe decodes all its object lists before failing
/// builder validation — but never more than a constant factor of the bytes
/// actually present.
pub fn reject_budget(input_len: usize) -> usize {
    512 * 1024 + 256 * input_len
}

/// Allocation budget for a decode that *accepts* its input. Valid values
/// legitimately expand well past their encoding (universe dependency
/// indexes, recompiled logical rules), so the linear factor is larger; the
/// budget still forbids growth driven by anything but the real input size.
pub fn accept_budget(input_len: usize) -> usize {
    4 * 1024 * 1024 + 4096 * input_len
}

/// A top-level untrusted decode entry point.
///
/// The wire surfaces all go through [`from_bytes`], which requires full
/// buffer consumption; [`Surface::Snapshot`] goes through
/// [`Snapshot::from_bytes`], the framed (magic/version/CRC) path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// `EventBatch` — the delta-ingestion payload.
    EventBatch,
    /// `FabricView` — the durable monitor mirror.
    FabricView,
    /// `PolicyUniverse` — the policy layer, re-validated on decode.
    PolicyUniverse,
    /// The mirrored TCAM map (`BTreeMap<SwitchId, Vec<TcamRule>>`).
    Tcam,
    /// `ChangeLog` — controller change history.
    ChangeLog,
    /// `FaultLog` — physical fault history.
    FaultLog,
    /// `Snapshot` — the framed session checkpoint, including engine restore
    /// of accepted values.
    Snapshot,
    /// A `scout-store` journal segment — the strict hash-chained decode
    /// recovery runs on every sealed segment file.
    Journal,
    /// `ServerRequest` — the serving layer's front-door message, the first
    /// decode a million untrusted tenants can reach.
    Server,
}

impl Surface {
    /// Every decode surface, in the order the harness runs them.
    pub const ALL: [Surface; 9] = [
        Surface::EventBatch,
        Surface::FabricView,
        Surface::PolicyUniverse,
        Surface::Tcam,
        Surface::ChangeLog,
        Surface::FaultLog,
        Surface::Snapshot,
        Surface::Journal,
        Surface::Server,
    ];

    /// The surface's stable name, used in corpus file names and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Surface::EventBatch => "eventbatch",
            Surface::FabricView => "fabricview",
            Surface::PolicyUniverse => "policyuniverse",
            Surface::Tcam => "tcam",
            Surface::ChangeLog => "changelog",
            Surface::FaultLog => "faultlog",
            Surface::Snapshot => "snapshot",
            Surface::Journal => "journal",
            Surface::Server => "server",
        }
    }

    /// Parses a surface from its [`Surface::name`].
    pub fn parse(name: &str) -> Option<Surface> {
        Surface::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Surface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What checking one input against the oracles concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The input decoded, re-encoded byte-identically, and stayed within the
    /// acceptance allocation budget.
    Accepted,
    /// The input was rejected with a typed error within the rejection
    /// allocation budget (the error's rendered form is kept for reporting).
    Rejected(String),
    /// An oracle was violated — this input is a bug and belongs in the
    /// regression corpus.
    Violation(Violation),
}

/// An oracle violation found for one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Decoding (or re-encoding, or restoring) panicked.
    Panic,
    /// The input decoded but re-encoded to different bytes.
    NonCanonical,
    /// Decoding allocated past the linear budget for its outcome.
    AllocBlowup {
        /// Peak bytes held during the decode.
        peak: usize,
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Panic => f.write_str("decode panicked"),
            Violation::NonCanonical => f.write_str("accepted input re-encoded to different bytes"),
            Violation::AllocBlowup { peak, budget } => {
                write!(f, "decode held {peak} heap bytes (budget {budget})")
            }
        }
    }
}

/// Runs one input through `surface`'s decoder and all three oracles.
pub fn check(surface: Surface, bytes: &[u8]) -> Verdict {
    match surface {
        Surface::EventBatch => check_wire::<EventBatch>(bytes),
        Surface::FabricView => check_wire::<FabricView>(bytes),
        Surface::PolicyUniverse => check_wire::<PolicyUniverse>(bytes),
        Surface::Tcam => check_wire::<BTreeMap<SwitchId, Vec<TcamRule>>>(bytes),
        Surface::ChangeLog => check_wire::<ChangeLog>(bytes),
        Surface::FaultLog => check_wire::<FaultLog>(bytes),
        Surface::Snapshot => check_snapshot(bytes),
        Surface::Journal => check_journal(bytes),
        Surface::Server => check_wire::<ServerRequest>(bytes),
    }
}

/// Applies the allocation oracle to an already-measured decode, then the
/// canonicality oracle via `reencode`.
fn judge<T>(
    bytes: &[u8],
    outcome: std::thread::Result<Result<T, String>>,
    peak: usize,
    reencode: impl FnOnce(&T) -> Vec<u8>,
) -> Verdict {
    match outcome {
        Err(_) => Verdict::Violation(Violation::Panic),
        Ok(Err(rendered)) => {
            let budget = reject_budget(bytes.len());
            if peak > budget {
                return Verdict::Violation(Violation::AllocBlowup { peak, budget });
            }
            Verdict::Rejected(rendered)
        }
        Ok(Ok(value)) => {
            let budget = accept_budget(bytes.len());
            if peak > budget {
                return Verdict::Violation(Violation::AllocBlowup { peak, budget });
            }
            match catch_unwind(AssertUnwindSafe(|| reencode(&value))) {
                Err(_) => Verdict::Violation(Violation::Panic),
                Ok(encoded) if encoded != bytes => Verdict::Violation(Violation::NonCanonical),
                Ok(_) => Verdict::Accepted,
            }
        }
    }
}

fn check_wire<T: Wire>(bytes: &[u8]) -> Verdict {
    let (outcome, peak) = alloc::measure(|| {
        catch_unwind(AssertUnwindSafe(|| {
            from_bytes::<T>(bytes).map_err(|e| e.to_string())
        }))
    });
    judge(bytes, outcome, peak, |value: &T| to_bytes(value))
}

fn check_journal(bytes: &[u8]) -> Verdict {
    let (outcome, peak) = alloc::measure(|| {
        catch_unwind(AssertUnwindSafe(|| {
            decode_segment(bytes).map_err(|e| e.to_string())
        }))
    });
    judge(bytes, outcome, peak, |segment: &Segment| segment.to_bytes())
}

fn check_snapshot(bytes: &[u8]) -> Verdict {
    let (outcome, peak) = alloc::measure(|| {
        catch_unwind(AssertUnwindSafe(|| {
            Snapshot::from_bytes(bytes).map_err(|e| e.to_string())
        }))
    });
    let verdict = judge(bytes, outcome, peak, |snap: &Snapshot| snap.to_bytes());
    if verdict != Verdict::Accepted {
        return verdict;
    }
    // Accepted snapshots must also survive the session-restore path without
    // panicking; a typed SessionError (e.g. a tail the view cannot replay)
    // is a legitimate outcome.
    let snapshot = Snapshot::from_bytes(bytes).expect("accepted above");
    let restored = catch_unwind(AssertUnwindSafe(|| {
        // next_epoch() is the first arithmetic a tail producer runs against
        // a restored snapshot; decode validation guarantees it has headroom,
        // and in debug builds an overflow here panics and is caught.
        let _ = snapshot.next_epoch();
        let engine = ScoutEngine::new();
        engine.restore(&snapshot).map(|_session| ()).is_ok()
    }));
    match restored {
        Err(_) => Verdict::Violation(Violation::Panic),
        Ok(_) => Verdict::Accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds;

    #[test]
    fn every_seed_is_accepted_by_its_surface() {
        for surface in Surface::ALL {
            for (i, seed) in seeds::for_surface(surface).iter().enumerate() {
                assert_eq!(
                    check(surface, seed),
                    Verdict::Accepted,
                    "{surface} seed {i}"
                );
            }
        }
    }

    #[test]
    fn truncation_rejects_with_typed_errors_everywhere() {
        for surface in Surface::ALL {
            let seed = &seeds::for_surface(surface)[0];
            for cut in [0, 1, seed.len() / 2, seed.len() - 1] {
                match check(surface, &seed[..cut]) {
                    Verdict::Rejected(_) => {}
                    verdict => panic!("{surface} cut {cut}: {verdict:?}"),
                }
            }
        }
    }

    #[test]
    fn surface_names_roundtrip() {
        for surface in Surface::ALL {
            assert_eq!(Surface::parse(surface.name()), Some(surface));
        }
        assert_eq!(Surface::parse("nope"), None);
    }
}
