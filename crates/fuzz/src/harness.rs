//! The fuzz loop: generate inputs, run the oracles, collect violations.

use std::panic;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::oracle::{self, Surface, Verdict, Violation};
use crate::{gen, seeds};

/// One oracle violation, together with the input that triggered it — exactly
/// what gets frozen into the regression corpus.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The surface that misbehaved.
    pub surface: Surface,
    /// Which oracle was violated.
    pub violation: Violation,
    /// The offending input, verbatim.
    pub input: Vec<u8>,
    /// The iteration (within the surface's run) that produced the input.
    pub iteration: u64,
}

/// Outcome of fuzzing one surface.
#[derive(Debug, Clone)]
pub struct SurfaceReport {
    /// The surface that was fuzzed.
    pub surface: Surface,
    /// Iterations executed.
    pub iterations: u64,
    /// Inputs every oracle passed on (decoded + canonical).
    pub accepted: u64,
    /// Inputs rejected with a typed error within budget.
    pub rejected: u64,
    /// Oracle violations (bugs).
    pub findings: Vec<Finding>,
}

/// Runs `iters` seeded fuzz iterations against one surface.
///
/// Panics inside the decoder are caught and reported as
/// [`Violation::Panic`]; the default panic hook is suppressed for the
/// duration so a fuzz run's output stays readable.
pub fn run_surface(surface: Surface, iters: u64, seed: u64) -> SurfaceReport {
    let seeds = seeds::for_surface(surface);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = SurfaceReport {
        surface,
        iterations: iters,
        accepted: 0,
        rejected: 0,
        findings: Vec::new(),
    };

    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    for iteration in 0..iters {
        let input = gen::next_input(&mut rng, surface, seeds);
        match oracle::check(surface, &input) {
            Verdict::Accepted => report.accepted += 1,
            Verdict::Rejected(_) => report.rejected += 1,
            Verdict::Violation(violation) => report.findings.push(Finding {
                surface,
                violation,
                input,
                iteration,
            }),
        }
    }
    panic::set_hook(prev_hook);
    report
}

/// Runs the full configured fuzz campaign; one report per surface.
pub fn run(surfaces: &[Surface], iters: u64, seed: u64) -> Vec<SurfaceReport> {
    // Each surface gets a distinct but seed-derived stream, so adding a
    // surface never perturbs the others' inputs.
    surfaces
        .iter()
        .enumerate()
        .map(|(i, &surface)| run_surface(surface, iters, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_over_every_surface_is_clean() {
        for report in run(&Surface::ALL, 300, 42) {
            assert!(
                report.findings.is_empty(),
                "{}: {:?}",
                report.surface,
                report.findings[0].violation
            );
            // The mutation engine must actually exercise both outcomes.
            assert!(report.rejected > 0, "{}: nothing rejected", report.surface);
            assert!(report.accepted > 0, "{}: nothing accepted", report.surface);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let summarize = |reports: Vec<SurfaceReport>| {
            reports
                .into_iter()
                .map(|r| (r.surface.name(), r.accepted, r.rejected, r.findings.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            summarize(run(&Surface::ALL, 100, 7)),
            summarize(run(&Surface::ALL, 100, 7))
        );
    }
}
