//! Valid wire encodings used as mutation seeds.
//!
//! Structure-aware fuzzing starts from inputs that *pass* every validation
//! layer: a mutation of a valid encoding exercises the deep decode paths
//! (universe re-validation, view invariants, tail sequencing) that pure byte
//! soup almost never reaches. Everything is built from deterministic sources
//! — [`scout_policy::sample`], [`ClusterSpec`] generation with fixed seeds,
//! and checkpointed sessions over the simulated fabric.
//!
//! Seeds are computed once per process and cached: fabric identity
//! (`Fabric::id`, `universe_version`) is drawn from process-global counters,
//! so regenerating them mid-run would produce different bytes. With the
//! cache, every [`for_surface`] call — and therefore every fuzz iteration —
//! sees the same seed bytes for the lifetime of the process, which is what
//! seeded reproducibility needs.

use std::sync::OnceLock;

use scout_core::ScoutEngine;
use scout_fabric::wire::to_bytes;
use scout_fabric::{EventBatch, Fabric, FabricProbe, FabricView, FullSync};
use scout_policy::sample;
use scout_server::ServerRequest;
use scout_store::{sha256, SegmentBuilder};
use scout_workload::ClusterSpec;

use crate::oracle::Surface;

/// A deployed three-tier fabric with one fault of each class applied, plus
/// the batches a probe observed along the way.
fn faulty_fabric() -> (Fabric, FabricProbe, Vec<EventBatch>) {
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    let mut probe = FabricProbe::new(&fabric);

    let mut batches = Vec::new();
    fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
    batches.push(EventBatch::new(1, probe.observe(&fabric)));
    fabric.disconnect_switch(sample::S1);
    batches.push(EventBatch::new(2, probe.observe(&fabric)));
    fabric.repair_switch(sample::S1);
    let universe = fabric.universe().clone();
    fabric.update_policy(universe);
    batches.push(EventBatch::new(3, probe.observe(&fabric)));

    (fabric, probe, batches)
}

fn build(surface: Surface) -> Vec<Vec<u8>> {
    let (fabric, _probe, batches) = faulty_fabric();
    match surface {
        Surface::EventBatch => {
            let mut seeds: Vec<Vec<u8>> = batches.iter().map(to_bytes).collect();
            seeds.push(to_bytes(&EventBatch::empty(1)));
            seeds
        }
        Surface::FabricView => {
            let undeployed = Fabric::new(sample::three_tier());
            vec![
                to_bytes(&FabricView::of(&fabric)),
                to_bytes(&FabricView::of(&undeployed)),
            ]
        }
        Surface::PolicyUniverse => vec![
            to_bytes(&sample::three_tier()),
            to_bytes(&ClusterSpec::small().generate(42)),
        ],
        Surface::Tcam => vec![to_bytes(&fabric.collect_tcam())],
        Surface::ChangeLog => vec![to_bytes(fabric.change_log())],
        Surface::FaultLog => vec![to_bytes(fabric.fault_log())],
        Surface::Snapshot => {
            // A checkpoint of a faulty session (non-trivial report), both
            // with and without a replay tail.
            let (mut fabric, mut probe, _) = faulty_fabric();
            let engine = ScoutEngine::new();
            let mut session = engine.open_session(&fabric);
            let bare = session.checkpoint().to_bytes();

            let mut snapshot = session.checkpoint();
            fabric.repair_switch(sample::S2);
            let batch = EventBatch::new(session.next_epoch(), probe.observe(&fabric));
            snapshot.push_tail(batch.clone()).expect("sequenced tail");
            session.ingest(batch).expect("live ingest");
            vec![bare, snapshot.to_bytes()]
        }
        Surface::Journal => {
            // A sealed journal segment carrying the probe's real batches,
            // plus an empty (header-only) segment — both canonical images
            // the strict recovery decoder accepts.
            let mut builder = SegmentBuilder::new(1, sha256(b"scout-fuzz/journal-seed"));
            for batch in &batches {
                builder.append(batch).expect("sequenced seed batches");
            }
            let empty = SegmentBuilder::new(7, sha256(b"scout-fuzz/empty-seed"));
            vec![builder.bytes().to_vec(), empty.bytes().to_vec()]
        }
        Surface::Server => {
            // One request of every shape the front door accepts, so mutations
            // reach each arm's payload decoder (universe revalidation, batch
            // events, the full fabric view inside a resync).
            vec![
                to_bytes(&ServerRequest::OpenSession {
                    tenant: 7,
                    universe: sample::three_tier(),
                }),
                to_bytes(&ServerRequest::Ingest {
                    tenant: 7,
                    batch: batches[0].clone(),
                }),
                to_bytes(&ServerRequest::Resync {
                    tenant: 7,
                    epoch: 4,
                    sync: FullSync::of(&fabric),
                }),
                to_bytes(&ServerRequest::Checkpoint { tenant: 7 }),
                to_bytes(&ServerRequest::Query { tenant: 7 }),
                to_bytes(&ServerRequest::CloseSession { tenant: 7 }),
            ]
        }
    }
}

/// Valid encodings for `surface`, computed once per process in
/// [`Surface::ALL`] order and stable thereafter.
pub fn for_surface(surface: Surface) -> &'static [Vec<u8>] {
    static CACHE: OnceLock<Vec<Vec<Vec<u8>>>> = OnceLock::new();
    let all = CACHE.get_or_init(|| Surface::ALL.into_iter().map(build).collect());
    let index = Surface::ALL
        .into_iter()
        .position(|s| s == surface)
        .expect("every surface is in ALL");
    &all[index]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_cached_and_nonempty() {
        for surface in Surface::ALL {
            let a = for_surface(surface);
            let b = for_surface(surface);
            assert!(!a.is_empty(), "{surface}: no seeds");
            assert_eq!(a, b, "{surface}: cache returned different seeds");
        }
    }
}
