//! The committed regression corpus: frozen inputs replayed deterministically.
//!
//! Every bug the fuzzer finds gets its triggering input frozen as
//! `tests/corpus/<surface>__<name>.bin` at the repository root. The root
//! test `tests/fuzz_corpus.rs` (and the `fuzz` CLI via `--corpus`) replays
//! the directory through the full oracle set on every run, so a fixed bug
//! stays fixed: the corpus is the executable history of the decode surface's
//! failures.
//!
//! A corpus case passes when the oracles are satisfied — *rejection with a
//! typed error is a pass*; most cases are malicious inputs whose expected
//! fate is exactly a clean rejection. Valid inputs (like the committed
//! `snapshot__v1` fixture) pass by decoding canonically.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::oracle::{self, Surface, Verdict};

/// One replayed corpus case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case's file path.
    pub path: PathBuf,
    /// The surface the file name routed the case to.
    pub surface: Surface,
    /// The oracle verdict for the frozen input.
    pub verdict: Verdict,
}

/// Replays every `<surface>__<name>.bin` file under `dir` through the
/// oracles, in sorted file-name order.
///
/// Returns an error for an unreadable directory, an entry whose name does
/// not parse, or an unreadable case file — a corpus that silently skips
/// cases would defeat its purpose.
pub fn replay_dir(dir: &Path) -> io::Result<Vec<CaseResult>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    paths.sort();

    let mut results = Vec::new();
    for path in paths {
        if path.extension().and_then(|e| e.to_str()) != Some("bin") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        let surface = stem
            .split_once("__")
            .and_then(|(prefix, _)| Surface::parse(prefix))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "corpus file {} has no <surface>__<name> prefix",
                        path.display()
                    ),
                )
            })?;
        let bytes = fs::read(&path)?;
        results.push(CaseResult {
            verdict: oracle::check(surface, &bytes),
            path,
            surface,
        });
    }
    Ok(results)
}

/// Freezes `bytes` as a corpus case file and returns its path.
pub fn write_case(dir: &Path, surface: Surface, name: &str, bytes: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}__{name}.bin", surface.name()));
    fs::write(&path, bytes)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Violation;

    #[test]
    fn corpus_files_roundtrip_through_replay() {
        let dir = std::env::temp_dir().join("scout-fuzz-corpus-test");
        let _ = fs::remove_dir_all(&dir);

        // A case that must be rejected (truncated batch) and one that must
        // be accepted (a pristine seed).
        let seed = crate::seeds::for_surface(Surface::EventBatch)[0].clone();
        write_case(&dir, Surface::EventBatch, "valid", &seed).unwrap();
        write_case(
            &dir,
            Surface::EventBatch,
            "truncated",
            &seed[..seed.len() - 1],
        )
        .unwrap();
        fs::write(dir.join("notes.md"), "non-bin files are ignored").unwrap();

        let results = replay_dir(&dir).unwrap();
        assert_eq!(results.len(), 2);
        // Sorted order: truncated < valid.
        assert!(matches!(results[0].verdict, Verdict::Rejected(_)));
        assert_eq!(results[1].verdict, Verdict::Accepted);
        assert!(!results
            .iter()
            .any(|r| matches!(r.verdict, Verdict::Violation(Violation::Panic))));

        let bad = dir.join("unprefixed.bin");
        fs::write(&bad, [0u8]).unwrap();
        assert!(replay_dir(&dir).is_err());

        fs::remove_dir_all(&dir).unwrap();
    }
}
