//! A tracking global allocator: the measurement side of the fuzzer's
//! allocation oracle.
//!
//! The oracle's claim is that decoding never allocates proportionally to an
//! attacker-controlled length prefix — a 16-byte buffer whose header promises
//! `u64::MAX` elements must not reserve gigabytes before the decoder notices
//! the bytes are missing. Proving that requires observing the allocator, so
//! this module wraps [`std::alloc::System`] with running-total and
//! high-water-mark counters.
//!
//! Linking `scout-fuzz` installs [`TrackingAlloc`] as the global allocator
//! (see the crate root), so every binary that runs the harness — the `fuzz`
//! CLI, the crate's own tests, the root corpus-replay test — has the oracle
//! armed automatically. The bookkeeping is two relaxed atomic operations per
//! allocation, which is noise next to the decode work being measured.

// A GlobalAlloc wrapper is necessarily unsafe; this module is the only place
// in the crate allowed to use it. Every contract obligation is delegated to
// `System` — the wrapper only adds counter updates on the side.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes currently allocated through [`TrackingAlloc`].
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`] since the last [`measure`] reset.
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] that delegates to [`System`] and tracks the current and
/// peak number of live heap bytes.
pub struct TrackingAlloc;

impl TrackingAlloc {
    fn record_alloc(size: usize) {
        let current = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(current, Ordering::Relaxed);
    }

    fn record_dealloc(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// GlobalAlloc contract; the counter updates do not touch the returned memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            Self::record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        new_ptr
    }
}

/// Runs `f` and returns its result together with the peak number of bytes
/// the call held *beyond* what was already live when it started.
///
/// The harness is single-threaded, so the counters attribute cleanly to `f`.
/// If [`TrackingAlloc`] is not the process's global allocator the peak never
/// moves and the measured delta is 0 — [`is_installed`] lets callers detect
/// that and refuse to report a vacuously passing allocation oracle.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = CURRENT.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(baseline))
}

/// Returns `true` if [`TrackingAlloc`] is actually serving this process's
/// allocations (probed by watching the counters while allocating).
pub fn is_installed() -> bool {
    let (_vec, peak) = measure(|| vec![0u8; 4096]);
    peak >= 4096
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_is_installed_in_this_binary() {
        assert!(is_installed());
    }

    #[test]
    fn measure_attributes_peak_to_the_closure() {
        let (len, peak) = measure(|| vec![0u8; 1 << 20].len());
        assert_eq!(len, 1 << 20);
        assert!(peak >= 1 << 20, "peak {peak} missed a 1 MiB allocation");
        // The vector was dropped inside the closure; a small follow-up
        // allocation must not inherit its peak.
        let (_small, peak) = measure(|| vec![0u8; 64]);
        assert!(peak < 1 << 20, "peak {peak} leaked across measurements");
    }
}
