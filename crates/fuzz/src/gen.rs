//! Input generators: seeded mutation of valid encodings, and raw byte soup.
//!
//! Both generators are driven by the in-house deterministic
//! [`StdRng`], so a fuzz run is fully reproducible from
//! its seed — a corpus-worthy input found in CI can be regenerated locally
//! from the same `--seed`/iteration count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use scout_store::chain_next;
use scout_store::journal::{JOURNAL_VERSION, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN, SEGMENT_MAGIC};
use scout_store::Digest;

use crate::oracle::Surface;

/// Byte offset of the CRC-32 word in a snapshot frame (after the 4-byte
/// magic and the 4-byte version).
const SNAPSHOT_CRC_OFFSET: usize = 8;
/// Total snapshot header length: magic, version, CRC.
const SNAPSHOT_HEADER_LEN: usize = 12;

/// CRC-32 (IEEE 802.3, reflected polynomial) — must match the snapshot
/// frame's checksum in `scout-core` so mutated payloads can be restamped.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Rewrites a snapshot frame's checksum to match its (possibly mutated)
/// payload, so the mutant penetrates past [`ChecksumMismatch`] into the
/// structural and semantic decode layers under test.
///
/// [`ChecksumMismatch`]: scout_core::SnapshotError::ChecksumMismatch
pub fn restamp_snapshot_crc(bytes: &mut [u8]) {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return;
    }
    let crc = crc32(&bytes[SNAPSHOT_HEADER_LEN..]);
    bytes[SNAPSHOT_CRC_OFFSET..SNAPSHOT_HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
}

/// Rewrites a journal segment's checksums and hash chain to match its
/// (possibly mutated) bytes: the header CRC, then every complete record
/// frame's payload CRC, chain digest and frame CRC, walking frames by their
/// length prefixes. Restamping stops at the first frame whose promised
/// payload runs past the buffer (a torn or framing-damaged tail stays as it
/// is). This lets structural mutants penetrate past the CRC and chain gates
/// into the payload decode and epoch-sequencing layers under test.
pub fn restamp_journal(bytes: &mut [u8]) {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return;
    }
    let crc = crc32(&bytes[0..48]);
    bytes[48..52].copy_from_slice(&crc.to_le_bytes());
    let mut chain: Digest = bytes[16..48].try_into().expect("32 bytes");
    let mut offset = SEGMENT_HEADER_LEN;
    while bytes.len() - offset >= RECORD_HEADER_LEN {
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if bytes.len() - offset - RECORD_HEADER_LEN < len {
            break;
        }
        let payload_start = offset + RECORD_HEADER_LEN;
        let payload_crc = crc32(&bytes[payload_start..payload_start + len]);
        chain = chain_next(&chain, &bytes[payload_start..payload_start + len]);
        bytes[offset + 4..offset + 8].copy_from_slice(&payload_crc.to_le_bytes());
        bytes[offset + 8..offset + 40].copy_from_slice(&chain);
        let frame_crc = crc32(&bytes[offset..offset + 40]);
        bytes[offset + 40..offset + 44].copy_from_slice(&frame_crc.to_le_bytes());
        offset = payload_start + len;
    }
}

/// One random structural mutation of `bytes`.
fn mutate_once(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    match rng.gen_range(0u8..8) {
        // Flip one bit.
        0 if !bytes.is_empty() => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1 << rng.gen_range(0u8..8);
        }
        // Overwrite one byte.
        1 if !bytes.is_empty() => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0u8..=255);
        }
        // Saturate a would-be length prefix: eight 0xFF bytes in place.
        2 if bytes.len() >= 8 => {
            let i = rng.gen_range(0..=bytes.len() - 8);
            bytes[i..i + 8].fill(0xFF);
        }
        // Truncate.
        3 if !bytes.is_empty() => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        // Remove a span.
        4 if !bytes.is_empty() => {
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=(bytes.len() - start).min(16));
            bytes.drain(start..start + len);
        }
        // Insert random bytes.
        5 => {
            let at = rng.gen_range(0..=bytes.len());
            let insert: Vec<u8> = (0..rng.gen_range(1usize..=16))
                .map(|_| rng.gen_range(0u8..=255))
                .collect();
            bytes.splice(at..at, insert);
        }
        // Duplicate a span (grows repeated-element payloads).
        6 if !bytes.is_empty() => {
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=(bytes.len() - start).min(32));
            let span: Vec<u8> = bytes[start..start + len].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, span);
        }
        // Append trailing garbage (the finish() oracle).
        _ => {
            for _ in 0..rng.gen_range(1usize..=8) {
                bytes.push(rng.gen_range(0u8..=255));
            }
        }
    }
}

/// Produces the next fuzz input for `surface`: usually a mutated seed,
/// sometimes pure byte soup.
pub fn next_input(rng: &mut StdRng, surface: Surface, seeds: &[Vec<u8>]) -> Vec<u8> {
    // 1-in-8 inputs are raw soup; everything else mutates a seed.
    if seeds.is_empty() || rng.gen_range(0u8..8) == 0 {
        let len = rng.gen_range(0usize..2048);
        let mut soup: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        if surface == Surface::Snapshot && rng.gen_bool(0.5) && soup.len() >= SNAPSHOT_HEADER_LEN {
            // Give half the soup a valid frame so it reaches the payload
            // decoder instead of dying at BadMagic.
            soup[..4].copy_from_slice(b"SCSN");
            soup[4..8].copy_from_slice(&scout_core::SNAPSHOT_VERSION.to_le_bytes());
            restamp_snapshot_crc(&mut soup);
        }
        if surface == Surface::Journal && rng.gen_bool(0.5) && soup.len() >= SEGMENT_HEADER_LEN {
            // Likewise: half the journal soup gets a valid header prologue
            // and fresh stamps so it reaches the record walk.
            soup[..4].copy_from_slice(&SEGMENT_MAGIC);
            soup[4..8].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
            restamp_journal(&mut soup);
        }
        return soup;
    }

    let mut input = seeds.choose(rng).expect("seeds checked non-empty").clone();
    for _ in 0..rng.gen_range(1usize..=4) {
        mutate_once(rng, &mut input);
    }
    if surface == Surface::Snapshot && rng.gen_bool(0.75) {
        // Most snapshot mutants get a fresh checksum; the rest keep the
        // stale one to exercise the ChecksumMismatch path itself.
        restamp_snapshot_crc(&mut input);
    }
    if surface == Surface::Journal && rng.gen_bool(0.75) {
        // Most journal mutants get fresh CRCs and a recomputed chain so they
        // reach the batch decode and epoch checks; the rest keep the stale
        // stamps to exercise the CRC/chain gates themselves.
        restamp_journal(&mut input);
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scout_core::Snapshot;

    #[test]
    fn crc_matches_the_snapshot_frame() {
        // Restamping an untouched valid snapshot must be a no-op: the
        // local crc32 agrees with the one scout-core stamps.
        let seed = crate::seeds::for_surface(Surface::Snapshot)[0].clone();
        let mut restamped = seed.clone();
        restamp_snapshot_crc(&mut restamped);
        assert_eq!(restamped, seed);
        assert!(Snapshot::from_bytes(&restamped).is_ok());
    }

    #[test]
    fn restamped_payload_mutants_pass_the_checksum_gate() {
        let seed = crate::seeds::for_surface(Surface::Snapshot)[0].clone();
        let mut mutant = seed.clone();
        let mid = SNAPSHOT_HEADER_LEN + (mutant.len() - SNAPSHOT_HEADER_LEN) / 2;
        mutant[mid] ^= 0x01;
        restamp_snapshot_crc(&mut mutant);
        // Whatever the decode outcome, it must not be ChecksumMismatch.
        match Snapshot::from_bytes(&mutant) {
            Ok(_) => {}
            Err(err) => {
                let rendered = err.to_string();
                assert!(
                    !rendered.contains("checksum"),
                    "restamp failed to clear the checksum gate: {rendered}"
                );
            }
        }
    }

    #[test]
    fn journal_restamp_is_a_fixpoint_on_valid_segments() {
        // Restamping an untouched valid segment must be a no-op: the frame
        // walk, CRCs and chain agree with what scout-store stamps.
        let seed = crate::seeds::for_surface(Surface::Journal)[0].clone();
        let mut restamped = seed.clone();
        restamp_journal(&mut restamped);
        assert_eq!(restamped, seed);
        assert!(scout_store::decode_segment(&restamped).is_ok());
    }

    #[test]
    fn restamped_journal_mutants_pass_the_crc_and_chain_gates() {
        let seed = crate::seeds::for_surface(Surface::Journal)[0].clone();
        // Flip one payload byte mid-segment, then restamp: whatever the
        // decode outcome, it must not be a CRC or chain failure.
        let mut mutant = seed.clone();
        let mid = SEGMENT_HEADER_LEN + RECORD_HEADER_LEN + 10;
        mutant[mid] ^= 0x01;
        restamp_journal(&mut mutant);
        if let Err(err) = scout_store::decode_segment(&mutant) {
            let rendered = err.to_string();
            assert!(
                !rendered.contains("checksum") && !rendered.contains("chain"),
                "restamp failed to clear the CRC/chain gates: {rendered}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let seeds = crate::seeds::for_surface(Surface::EventBatch);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50)
                .map(|_| next_input(&mut rng, Surface::EventBatch, seeds))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
