//! Structure-aware fuzzing for the repo's untrusted decode surfaces.
//!
//! Checkpoint bytes and replay tails cross host and tenant boundaries, which
//! makes `scout_fabric::wire` and `scout_core::Snapshot::from_bytes` the
//! system's untrusted input boundary. This crate is the harness that holds
//! that boundary to its contract (see `ARCHITECTURE.md`, "Untrusted input
//! boundary"):
//!
//! * [`seeds`] produces valid encodings of every surface from deterministic
//!   workloads — the starting points for structure-aware mutation;
//! * [`gen`] mutates those seeds (bit flips, length-prefix saturation,
//!   truncation, splices, trailing garbage) and brews raw byte soup, with
//!   snapshot checksums restamped so mutants reach the layers under test;
//! * [`oracle`] runs each input through its surface's decoder and demands no
//!   panics, allocation linear in the input, byte-exact canonical
//!   re-encoding of accepted inputs, and typed errors for everything else;
//! * [`harness`] wires the three together into seeded, reproducible runs;
//! * [`corpus`] freezes findings as `tests/corpus/*.bin` files and replays
//!   them deterministically.
//!
//! The `fuzz` binary (`cargo run --release -p scout-fuzz --bin fuzz`) is the
//! CLI over [`harness::run`] used by CI's `fuzz-smoke` job.
//!
//! Linking this crate installs [`alloc::TrackingAlloc`] as the global
//! allocator so the allocation oracle is always armed.
//!
//! # Example
//!
//! ```
//! use scout_fuzz::harness;
//! use scout_fuzz::oracle::Surface;
//!
//! let report = harness::run_surface(Surface::EventBatch, 200, 42);
//! assert_eq!(report.iterations, 200);
//! assert!(report.findings.is_empty(), "oracle violations: {:?}", report.findings);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod corpus;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod seeds;

/// The tracking allocator, installed for every binary that links this crate.
#[global_allocator]
static GLOBAL: alloc::TrackingAlloc = alloc::TrackingAlloc;
