//! CLI over the fuzz harness: seeded campaigns plus corpus replay.
//!
//! ```text
//! fuzz [--iters N] [--seed S] [--surface NAME]... [--corpus DIR] [--write-corpus DIR]
//! ```
//!
//! * `--iters N` — iterations per surface (default 1000).
//! * `--seed S` — base RNG seed (default 42); each surface derives its own
//!   stream, so runs are reproducible per surface.
//! * `--surface NAME` — restrict to one or more surfaces (default: all).
//! * `--corpus DIR` — replay a frozen corpus directory first; any oracle
//!   violation there fails the run before fuzzing starts.
//! * `--write-corpus DIR` — freeze each finding's input into `DIR` as a
//!   `<surface>__finding<k>.bin` case.
//!
//! Exits non-zero if any oracle was violated.

use std::path::PathBuf;
use std::process::ExitCode;

use scout_fuzz::oracle::{Surface, Verdict};
use scout_fuzz::{alloc, corpus, harness};

struct Args {
    iters: u64,
    seed: u64,
    surfaces: Vec<Surface>,
    corpus: Option<PathBuf>,
    write_corpus: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 1000,
        seed: 42,
        surfaces: Vec::new(),
        corpus: None,
        write_corpus: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--surface" => {
                let name = value("--surface")?;
                let surface = Surface::parse(&name).ok_or(format!("unknown surface {name:?}"))?;
                args.surfaces.push(surface);
            }
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--write-corpus" => args.write_corpus = Some(PathBuf::from(value("--write-corpus")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.surfaces.is_empty() {
        args.surfaces = Surface::ALL.to_vec();
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("fuzz: {err}");
            return ExitCode::FAILURE;
        }
    };

    // A fuzz run whose allocation oracle is silently disarmed would report
    // vacuous passes; refuse to run that way.
    if !alloc::is_installed() {
        eprintln!("fuzz: tracking allocator not installed; allocation oracle disarmed");
        return ExitCode::FAILURE;
    }

    let mut violations = 0usize;

    if let Some(dir) = &args.corpus {
        match corpus::replay_dir(dir) {
            Err(err) => {
                eprintln!("fuzz: corpus {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
            Ok(results) => {
                let mut accepted = 0usize;
                let mut rejected = 0usize;
                for case in &results {
                    match &case.verdict {
                        Verdict::Accepted => accepted += 1,
                        Verdict::Rejected(_) => rejected += 1,
                        Verdict::Violation(violation) => {
                            violations += 1;
                            eprintln!("corpus FAIL {}: {violation}", case.path.display());
                        }
                    }
                }
                println!(
                    "corpus {}: {} cases ({accepted} accepted, {rejected} rejected cleanly)",
                    dir.display(),
                    results.len(),
                );
            }
        }
    }

    for report in harness::run(&args.surfaces, args.iters, args.seed) {
        println!(
            "{:<16} {} iters: {} accepted, {} rejected, {} violations",
            report.surface.name(),
            report.iterations,
            report.accepted,
            report.rejected,
            report.findings.len(),
        );
        for (k, finding) in report.findings.iter().enumerate() {
            violations += 1;
            eprintln!(
                "  FAIL iter {} ({} bytes): {}",
                finding.iteration,
                finding.input.len(),
                finding.violation,
            );
            if let Some(dir) = &args.write_corpus {
                match corpus::write_case(
                    dir,
                    finding.surface,
                    &format!("finding{k}"),
                    &finding.input,
                ) {
                    Ok(path) => eprintln!("  frozen as {}", path.display()),
                    Err(err) => eprintln!("  could not freeze case: {err}"),
                }
            }
        }
    }

    if violations > 0 {
        eprintln!("fuzz: {violations} oracle violation(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
