//! Regenerates the committed regression corpus under `tests/corpus/`.
//!
//! ```text
//! gen-corpus [DIR]
//! ```
//!
//! Every case is built deterministically — from the fuzzer's own seeds, from
//! manual [`WireWriter`] encodings, or by byte surgery on a valid frame with
//! the CRC restamped — and **verified before it is written**: the generator
//! asserts the exact typed error (or clean acceptance) each case must
//! produce, then replays the finished directory through the full oracle set.
//! A generator run that would freeze a case with the wrong fate aborts
//! instead.
//!
//! The committed `.bin` files are the contract, not this generator: the
//! `snapshot__v1` fixture in particular pins the `SNAPSHOT_VERSION = 1`
//! byte layout, and must never be silently regenerated after a version bump
//! — that is exactly the migration break the fixture exists to catch.

use std::collections::BTreeSet;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use scout_core::{CorrelationReport, Hypothesis, Snapshot, SnapshotError};
use scout_fabric::wire::{from_bytes, to_bytes, Wire, WireError, WireReader, WireWriter};
use scout_fabric::{EventBatch, Fabric, FabricView};
use scout_fuzz::gen::{restamp_journal, restamp_snapshot_crc};
use scout_fuzz::oracle::{self, Surface, Verdict};
use scout_fuzz::{corpus, seeds};
use scout_policy::{
    sample, ContractBinding, Epg, EpgId, LogicalRule, ObjectId, PolicyUniverse, SwitchId, TcamRule,
};
use scout_server::ServerRequest;
use scout_store::journal::{
    crc32 as journal_crc32, decode_segment, encode_record, JournalError, SegmentHeader,
    MAX_RECORD_PAYLOAD, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN,
};
use scout_store::sha256;

/// Checks `bytes` against the oracles, asserts the expected fate, and
/// freezes the case.
fn freeze(dir: &Path, surface: Surface, name: &str, bytes: &[u8], expect_accept: bool) {
    match oracle::check(surface, bytes) {
        Verdict::Accepted => assert!(expect_accept, "{surface}__{name}: unexpectedly accepted"),
        Verdict::Rejected(err) => assert!(
            !expect_accept,
            "{surface}__{name}: unexpectedly rejected: {err}"
        ),
        Verdict::Violation(violation) => panic!("{surface}__{name}: oracle violation: {violation}"),
    }
    let path = corpus::write_case(dir, surface, name, bytes).expect("corpus case written");
    println!("wrote {} ({} bytes)", path.display(), bytes.len());
}

/// Byte offsets inside a valid snapshot frame, recovered by re-walking the
/// payload with the same public decoders `Snapshot::from_bytes` uses. Byte
/// surgery at these offsets (plus a CRC restamp) forges payloads that no
/// honest encoder can produce.
struct SnapshotOffsets {
    /// Offset of the report's per-switch check count (a `u64`).
    check_count_offset: usize,
    /// Byte span of the first encoded `SwitchCheckResult`.
    first_check: Range<usize>,
    /// End of the last `SwitchCheckResult` (start of the observations set).
    checks_end: usize,
    /// Spans of the `a` and `b` ids of the first observation whose EPG pair
    /// has `a != b` — swapping them denormalizes the pair.
    denorm_pair: Option<(Range<usize>, Range<usize>)>,
    /// Offset of the replay-tail batch count (a `u64`).
    tail_count_offset: usize,
}

fn snapshot_offsets(bytes: &[u8]) -> SnapshotOffsets {
    let payload = &bytes[12..];
    let mut r = WireReader::new(payload);
    let at = |r: &WireReader<'_>| 12 + payload.len() - r.remaining();

    for _ in 0..3 {
        r.get_u64().expect("snapshot header fields"); // fabric_id, open_epoch, epoch
    }
    FabricView::decode(&mut r).expect("seed snapshot view");

    let check_count_offset = at(&r);
    let check_count = r.get_usize().expect("check count");
    assert!(check_count >= 2, "seed snapshot needs >= 2 switch checks");
    let first_start = at(&r);
    let mut first_check = first_start..first_start;
    let mut checks_end = first_start;
    for i in 0..check_count {
        SwitchId::decode(&mut r).expect("check switch");
        r.get_bool().expect("check equivalent");
        <Vec<LogicalRule> as Wire>::decode(&mut r).expect("missing rules");
        <Vec<TcamRule> as Wire>::decode(&mut r).expect("unexpected rules");
        if i == 0 {
            first_check = first_start..at(&r);
        }
        checks_end = at(&r);
    }

    let obs_count = r.get_usize().expect("observation count");
    let mut denorm_pair = None;
    for _ in 0..obs_count {
        SwitchId::decode(&mut r).expect("observation switch");
        let a_start = at(&r);
        let a = EpgId::decode(&mut r).expect("pair a");
        let a_end = at(&r);
        let b = EpgId::decode(&mut r).expect("pair b");
        let b_end = at(&r);
        if denorm_pair.is_none() && a != b {
            denorm_pair = Some((a_start..a_end, a_end..b_end));
        }
    }

    <BTreeSet<ObjectId> as Wire>::decode(&mut r).expect("suspect objects");
    Hypothesis::decode(&mut r).expect("hypothesis");
    CorrelationReport::decode(&mut r).expect("diagnosis");
    let tail_count_offset = at(&r);

    SnapshotOffsets {
        check_count_offset,
        first_check,
        checks_end,
        denorm_pair,
        tail_count_offset,
    }
}

fn event_batch_cases(dir: &Path) {
    let surface = Surface::EventBatch;
    let seed = seeds::for_surface(surface)[0].clone();
    freeze(dir, surface, "valid", &seed, true);
    freeze(dir, surface, "truncated", &seed[..seed.len() - 1], false);

    let mut trailing = seed.clone();
    trailing.extend([0xA5; 3]);
    assert_eq!(
        from_bytes::<EventBatch>(&trailing),
        Err(WireError::TrailingBytes { remaining: 3 })
    );
    freeze(dir, surface, "trailing_garbage", &trailing, false);

    // epoch 1, then an event count of u64::MAX: a decoder that trusted the
    // prefix would pre-allocate ~2^64 entries before reading a single byte.
    let mut w = WireWriter::new();
    w.put_u64(1);
    w.put_u64(u64::MAX);
    let huge = w.into_bytes();
    assert!(matches!(
        from_bytes::<EventBatch>(&huge),
        Err(WireError::UnexpectedEof { .. })
    ));
    freeze(dir, surface, "huge_len_prefix", &huge, false);

    let mut w = WireWriter::new();
    w.put_u64(1); // epoch
    w.put_u64(1); // one event
    w.put_u8(0xFF); // no FabricEvent variant uses this tag
    let bad_tag = w.into_bytes();
    assert_eq!(
        from_bytes::<EventBatch>(&bad_tag),
        Err(WireError::InvalidTag {
            what: "FabricEvent",
            tag: 0xFF,
        })
    );
    freeze(dir, surface, "bad_tag", &bad_tag, false);
}

fn fabric_view_cases(dir: &Path) {
    let surface = Surface::FabricView;
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    let view = FabricView::of(&fabric);
    freeze(dir, surface, "valid", &to_bytes(&view), true);

    // Same view, plus a mirrored TCAM table for a switch the universe has
    // never heard of.
    let mut w = WireWriter::new();
    w.put_u64(view.universe_version());
    view.universe().encode(&mut w);
    let mut tcam = view.tcam().clone();
    tcam.insert(SwitchId::new(9999), Vec::new());
    tcam.encode(&mut w);
    view.change_log().encode(&mut w);
    view.fault_log().encode(&mut w);
    let stray = w.into_bytes();
    assert_eq!(
        from_bytes::<FabricView>(&stray),
        Err(WireError::Invalid { what: "FabricView" })
    );
    freeze(dir, surface, "stray_tcam", &stray, false);
}

fn policy_universe_cases(dir: &Path) {
    let surface = Surface::PolicyUniverse;
    let universe = sample::three_tier();
    freeze(dir, surface, "valid", &to_bytes(&universe), true);

    let encode_with = |mutate: &dyn Fn(&mut Vec<Epg>, &mut Vec<ContractBinding>)| {
        let mut epgs: Vec<Epg> = universe.epgs().cloned().collect();
        let mut bindings = universe.bindings().to_vec();
        mutate(&mut epgs, &mut bindings);
        let mut w = WireWriter::new();
        universe
            .tenants()
            .cloned()
            .collect::<Vec<_>>()
            .encode(&mut w);
        universe.vrfs().cloned().collect::<Vec<_>>().encode(&mut w);
        epgs.encode(&mut w);
        universe
            .endpoints()
            .cloned()
            .collect::<Vec<_>>()
            .encode(&mut w);
        universe
            .switches()
            .cloned()
            .collect::<Vec<_>>()
            .encode(&mut w);
        universe
            .contracts()
            .cloned()
            .collect::<Vec<_>>()
            .encode(&mut w);
        universe
            .filters()
            .cloned()
            .collect::<Vec<_>>()
            .encode(&mut w);
        bindings.encode(&mut w);
        w.into_bytes()
    };

    assert!(universe.epgs().count() >= 2);
    let unsorted = encode_with(&|epgs, _| epgs.swap(0, 1));
    assert_eq!(
        from_bytes::<PolicyUniverse>(&unsorted),
        Err(WireError::NonCanonical {
            what: "PolicyUniverse.epgs"
        })
    );
    freeze(dir, surface, "unsorted_epgs", &unsorted, false);

    assert!(!universe.bindings().is_empty());
    let dup = encode_with(&|_, bindings| bindings.insert(0, bindings[0]));
    assert_eq!(
        from_bytes::<PolicyUniverse>(&dup),
        Err(WireError::NonCanonical {
            what: "PolicyUniverse.bindings"
        })
    );
    freeze(dir, surface, "dup_binding", &dup, false);
}

fn tcam_cases(dir: &Path) {
    let surface = Surface::Tcam;
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    let tcam = fabric.collect_tcam();
    assert!(tcam.len() >= 2, "need >= 2 switches to unsort the map");
    freeze(dir, surface, "valid", &to_bytes(&tcam), true);

    let mut w = WireWriter::new();
    w.put_usize(tcam.len());
    for (switch, rules) in tcam.iter().rev() {
        switch.encode(&mut w);
        rules.encode(&mut w);
    }
    let unsorted = w.into_bytes();
    assert_eq!(
        from_bytes::<std::collections::BTreeMap<SwitchId, Vec<TcamRule>>>(&unsorted),
        Err(WireError::NonCanonical { what: "BTreeMap" })
    );
    freeze(dir, surface, "unsorted_keys", &unsorted, false);
}

fn log_cases(dir: &Path) {
    let changelog = seeds::for_surface(Surface::ChangeLog)[0].clone();
    freeze(dir, Surface::ChangeLog, "valid", &changelog, true);
    let faultlog = seeds::for_surface(Surface::FaultLog)[0].clone();
    freeze(dir, Surface::FaultLog, "valid", &faultlog, true);
}

fn snapshot_cases(dir: &Path) {
    let surface = Surface::Snapshot;
    let snap_seeds = seeds::for_surface(surface);
    let bare = snap_seeds[0].clone();
    let tailed = snap_seeds[1].clone();
    assert!(
        !Snapshot::from_bytes(&tailed)
            .expect("seed decodes")
            .tail()
            .is_empty(),
        "the v1 fixture must pin tail replay, not just the checkpoint"
    );
    freeze(dir, surface, "v1", &tailed, true);

    let mut bad_magic = tailed.clone();
    bad_magic[..4].copy_from_slice(b"XXXX");
    assert_eq!(
        Snapshot::from_bytes(&bad_magic),
        Err(SnapshotError::BadMagic)
    );
    freeze(dir, surface, "bad_magic", &bad_magic, false);

    let mut wrong_version = tailed.clone();
    wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&wrong_version),
        Err(SnapshotError::UnsupportedVersion { found: 99, .. })
    ));
    freeze(dir, surface, "wrong_version", &wrong_version, false);

    // One flipped payload bit, checksum left stale.
    let mut bad_crc = tailed.clone();
    bad_crc[20] ^= 0x01;
    assert!(matches!(
        Snapshot::from_bytes(&bad_crc),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
    freeze(dir, surface, "bad_crc", &bad_crc, false);

    // Checkpoint epoch forged to u64::MAX: accepting it would make the very
    // next `next_epoch()` overflow. The epoch is the third payload u64.
    let mut overflow = bare.clone();
    overflow[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    restamp_snapshot_crc(&mut overflow);
    assert_eq!(
        Snapshot::from_bytes(&overflow),
        Err(SnapshotError::EpochOverflow { epoch: u64::MAX })
    );
    freeze(dir, surface, "epoch_overflow", &overflow, false);

    // Checkpoint epoch shifted forward: the tail batches no longer continue
    // it in +1 sequence.
    let epoch = u64::from_le_bytes(tailed[28..36].try_into().expect("8 bytes"));
    let mut gapped = tailed.clone();
    gapped[28..36].copy_from_slice(&(epoch + 5).to_le_bytes());
    restamp_snapshot_crc(&mut gapped);
    assert_eq!(
        Snapshot::from_bytes(&gapped),
        Err(SnapshotError::TailOutOfOrder {
            expected: epoch + 6,
            got: epoch + 1,
        })
    );
    freeze(dir, surface, "gapped_tail", &gapped, false);

    let offsets = snapshot_offsets(&tailed);

    // The report's per-switch section replaced by the same switch twice: the
    // old decoder collapsed the duplicate into one map entry, re-encoding to
    // fewer bytes than arrived.
    let mut w = WireWriter::new();
    w.put_usize(2);
    let mut dup = tailed[..offsets.check_count_offset].to_vec();
    dup.extend_from_slice(&w.into_bytes());
    dup.extend_from_slice(&tailed[offsets.first_check.clone()]);
    dup.extend_from_slice(&tailed[offsets.first_check.clone()]);
    dup.extend_from_slice(&tailed[offsets.checks_end..]);
    restamp_snapshot_crc(&mut dup);
    assert_eq!(
        Snapshot::from_bytes(&dup),
        Err(SnapshotError::Wire(WireError::NonCanonical {
            what: "NetworkCheckResult"
        }))
    );
    freeze(dir, surface, "dup_check_switch", &dup, false);

    // An observation's EPG pair with its members swapped: decodes to the
    // same normalized value, so the bytes are non-canonical.
    let (a_span, b_span) = offsets
        .denorm_pair
        .expect("seed report needs an observation with two distinct EPGs");
    assert_eq!(a_span.len(), b_span.len());
    let mut denorm = tailed.clone();
    let a_bytes = tailed[a_span.clone()].to_vec();
    let b_bytes = tailed[b_span.clone()].to_vec();
    denorm[a_span].copy_from_slice(&b_bytes);
    denorm[b_span].copy_from_slice(&a_bytes);
    restamp_snapshot_crc(&mut denorm);
    assert_eq!(
        Snapshot::from_bytes(&denorm),
        Err(SnapshotError::Wire(WireError::NonCanonical {
            what: "EpgPair"
        }))
    );
    freeze(dir, surface, "denorm_epgpair", &denorm, false);

    // Replay-tail count saturated to u64::MAX with a freshly stamped CRC —
    // the snapshot-surface twin of `eventbatch__huge_len_prefix`.
    let mut huge_tail = tailed.clone();
    huge_tail[offsets.tail_count_offset..offsets.tail_count_offset + 8].fill(0xFF);
    restamp_snapshot_crc(&mut huge_tail);
    assert!(matches!(
        Snapshot::from_bytes(&huge_tail),
        Err(SnapshotError::Wire(WireError::UnexpectedEof { .. }))
    ));
    freeze(dir, surface, "huge_tail_len", &huge_tail, false);
}

fn journal_cases(dir: &Path) {
    let surface = Surface::Journal;
    let journal_seeds = seeds::for_surface(surface);
    let sealed = journal_seeds[0].clone();
    let empty = journal_seeds[1].clone();
    assert!(
        decode_segment(&sealed).expect("seed decodes").records.len() >= 3,
        "the journal seed must pin a multi-record chain, not a trivial segment"
    );
    freeze(dir, surface, "valid", &sealed, true);
    freeze(dir, surface, "empty__valid", &empty, true);

    // Torn mid-record: strict decode (the fuzz surface) rejects what
    // recovery's lenient decoder would truncate.
    assert!(matches!(
        decode_segment(&sealed[..sealed.len() - 1]),
        Err(JournalError::TruncatedRecord { .. })
    ));
    freeze(
        dir,
        surface,
        "truncated",
        &sealed[..sealed.len() - 1],
        false,
    );

    assert_eq!(
        decode_segment(&sealed[..30]),
        Err(JournalError::TruncatedHeader { len: 30 })
    );
    freeze(dir, surface, "truncated_header", &sealed[..30], false);

    let mut bad_magic = sealed.clone();
    bad_magic[..4].copy_from_slice(b"XXXX");
    assert_eq!(decode_segment(&bad_magic), Err(JournalError::BadMagic));
    freeze(dir, surface, "bad_magic", &bad_magic, false);

    let mut wrong_version = sealed.clone();
    wrong_version[4..8].copy_from_slice(&9u32.to_le_bytes());
    assert_eq!(
        decode_segment(&wrong_version),
        Err(JournalError::UnsupportedVersion { version: 9 })
    );
    freeze(dir, surface, "wrong_version", &wrong_version, false);

    // One flipped payload byte, stamps left stale — the single-bit-flip
    // tamper case recovery must catch.
    let mut flipped = sealed.clone();
    flipped[SEGMENT_HEADER_LEN + RECORD_HEADER_LEN + 2] ^= 0x01;
    assert_eq!(
        decode_segment(&flipped),
        Err(JournalError::PayloadCrc { epoch: 1 })
    );
    freeze(dir, surface, "flipped_payload", &flipped, false);

    // The first two record frames swapped wholesale: each frame is
    // internally consistent but the chain no longer links.
    let frame1_len = RECORD_HEADER_LEN
        + u32::from_le_bytes(
            sealed[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
    let second_start = SEGMENT_HEADER_LEN + frame1_len;
    let frame2_len = RECORD_HEADER_LEN
        + u32::from_le_bytes(
            sealed[second_start..second_start + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
    let mut spliced = sealed[..SEGMENT_HEADER_LEN].to_vec();
    spliced.extend_from_slice(&sealed[second_start..second_start + frame2_len]);
    spliced.extend_from_slice(&sealed[SEGMENT_HEADER_LEN..second_start]);
    spliced.extend_from_slice(&sealed[second_start + frame2_len..]);
    assert_eq!(
        decode_segment(&spliced),
        Err(JournalError::ChainMismatch { epoch: 1 })
    );
    freeze(dir, surface, "spliced_records", &spliced, false);

    // A freshly stamped record (valid CRCs, valid chain) whose batch claims
    // the wrong epoch for its journal position.
    let genesis = sha256(b"scout-fuzz/journal-corpus");
    let mut epoch_gap = SegmentHeader {
        first_epoch: 1,
        prev_chain: genesis,
    }
    .to_bytes()
    .to_vec();
    let (frame, _) =
        encode_record(&genesis, &EventBatch::empty(9)).expect("small batch is under the cap");
    epoch_gap.extend_from_slice(&frame);
    assert_eq!(
        decode_segment(&epoch_gap),
        Err(JournalError::EpochMismatch {
            expected: 1,
            found: 9,
        })
    );
    freeze(dir, surface, "epoch_gap", &epoch_gap, false);

    // A header-only segment claiming first_epoch = 0 with a valid CRC: epoch
    // 0 is the genesis anchor, never a journal record — and an unguarded
    // decoder underflowed `end_epoch` on exactly this input.
    let zero_epoch = SegmentHeader {
        first_epoch: 0,
        prev_chain: genesis,
    }
    .to_bytes()
    .to_vec();
    assert_eq!(
        decode_segment(&zero_epoch),
        Err(JournalError::FirstEpochZero)
    );
    freeze(dir, surface, "zero_first_epoch", &zero_epoch, false);

    // Payload replaced with non-wire bytes and every stamp recomputed: the
    // frame passes all CRC and chain gates and dies in the batch decode.
    let mut garbage = sealed.clone();
    let payload_len = frame1_len - RECORD_HEADER_LEN;
    garbage[SEGMENT_HEADER_LEN + RECORD_HEADER_LEN..second_start].fill(0xAB);
    restamp_journal(&mut garbage);
    assert!(payload_len > 0);
    assert!(matches!(
        decode_segment(&garbage),
        Err(JournalError::Batch { epoch: 1, .. })
    ));
    freeze(dir, surface, "garbage_payload", &garbage, false);

    // A frame header validly promising a payload past the sanity cap — a
    // decoder that trusted it would pre-allocate 64 MiB from a 96-byte file.
    let mut oversized = SegmentHeader {
        first_epoch: 1,
        prev_chain: genesis,
    }
    .to_bytes()
    .to_vec();
    let huge = (MAX_RECORD_PAYLOAD + 1) as u32;
    let mut frame = Vec::with_capacity(RECORD_HEADER_LEN);
    frame.extend_from_slice(&huge.to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // payload crc (never reached)
    frame.extend_from_slice(&[0u8; 32]); // chain (never reached)
    let frame_crc = journal_crc32(&frame[0..40]);
    frame.extend_from_slice(&frame_crc.to_le_bytes());
    oversized.extend_from_slice(&frame);
    assert_eq!(
        decode_segment(&oversized),
        Err(JournalError::OversizedRecord {
            offset: SEGMENT_HEADER_LEN,
            len: u64::from(huge),
        })
    );
    freeze(dir, surface, "oversized_record", &oversized, false);
}

fn server_cases(dir: &Path) {
    let surface = Surface::Server;
    let seed = seeds::for_surface(surface)[0].clone(); // OpenSession
    freeze(dir, surface, "open_session__valid", &seed, true);
    freeze(dir, surface, "truncated", &seed[..seed.len() - 1], false);

    let mut trailing = seed.clone();
    trailing.extend([0x5A; 2]);
    assert_eq!(
        from_bytes::<ServerRequest>(&trailing),
        Err(WireError::TrailingBytes { remaining: 2 })
    );
    freeze(dir, surface, "trailing_garbage", &trailing, false);

    // Tag 6: one past the last request variant.
    let mut w = WireWriter::new();
    w.put_u8(6);
    w.put_u64(7);
    let bad_tag = w.into_bytes();
    assert_eq!(
        from_bytes::<ServerRequest>(&bad_tag),
        Err(WireError::InvalidTag {
            what: "ServerRequest",
            tag: 6,
        })
    );
    freeze(dir, surface, "bad_tag", &bad_tag, false);

    // An Ingest whose batch claims u64::MAX events: the serving twin of
    // `eventbatch__huge_len_prefix` — a front door that trusted the prefix
    // would pre-allocate ~2^64 entries for a 25-byte request.
    let mut w = WireWriter::new();
    w.put_u8(1); // Ingest
    w.put_u64(7); // tenant
    w.put_u64(1); // batch epoch
    w.put_u64(u64::MAX); // event count
    let huge = w.into_bytes();
    assert!(matches!(
        from_bytes::<ServerRequest>(&huge),
        Err(WireError::UnexpectedEof { .. })
    ));
    freeze(dir, surface, "huge_len_prefix", &huge, false);

    // A Resync carrying a fabric view with a mirrored TCAM table for a
    // switch the universe has never heard of — every frame is well-formed,
    // the cross-field invariant is not.
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    let view = FabricView::of(&fabric);
    let mut w = WireWriter::new();
    w.put_u8(2); // Resync
    w.put_u64(7); // tenant
    w.put_u64(4); // epoch
    w.put_u64(view.universe_version());
    view.universe().encode(&mut w);
    let mut tcam = view.tcam().clone();
    tcam.insert(SwitchId::new(9999), Vec::new());
    tcam.encode(&mut w);
    view.change_log().encode(&mut w);
    view.fault_log().encode(&mut w);
    let stray = w.into_bytes();
    assert_eq!(
        from_bytes::<ServerRequest>(&stray),
        Err(WireError::Invalid { what: "FabricView" })
    );
    freeze(dir, surface, "resync_stray_tcam", &stray, false);
}

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tests/corpus"));

    event_batch_cases(&dir);
    fabric_view_cases(&dir);
    policy_universe_cases(&dir);
    tcam_cases(&dir);
    log_cases(&dir);
    snapshot_cases(&dir);
    journal_cases(&dir);
    server_cases(&dir);

    // Final gate: the directory as a whole replays clean.
    let results = corpus::replay_dir(&dir).expect("corpus replay");
    let violations: Vec<_> = results
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::Violation(_)))
        .collect();
    for case in &violations {
        eprintln!("VIOLATION {}", case.path.display());
    }
    println!(
        "corpus {}: {} cases, {} violations",
        dir.display(),
        results.len(),
        violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
