//! The campaign runner: batches of seeded scenarios, executed in parallel,
//! aggregated into a deterministic report.
//!
//! A [`Campaign`] fixes a workload, a scenario count, a disturbance mix and a
//! seed; [`Campaign::run`] builds one [`ScoutEngine`] from the campaign's
//! [`EngineConfig`], deploys the reference fabric once, opens an
//! [`AnalysisSession`](scout_core::AnalysisSession) on it per worker thread,
//! and drives every scenario through the full pipeline. Scenario `i` depends
//! only on `mix_seed(campaign_seed, i)`, so the outcome vector — and the
//! aggregate [`CampaignReport`] — is identical regardless of thread count or
//! analysis mode.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use scout_core::{EngineConfig, ScoutEngine};
use scout_fabric::Fabric;
use scout_metrics::{fmt3, fmt_mean, Cdf, Summary, Table};

use crate::scenario::{run_scenario, ScenarioKind, ScenarioMix, ScenarioOutcome, WorkloadKind};

/// How many worker threads a campaign uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// One worker per available core, capped by the scenario count.
    #[default]
    Auto,
    /// Single-threaded execution.
    Sequential,
    /// Exactly this many workers (at least 1).
    Threads(usize),
}

/// Whether scenario analyses reuse the per-worker session snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Reuse the session's equivalence check and pristine risk model;
    /// per-scenario cost is proportional to the disturbance.
    #[default]
    Incremental,
    /// Rebuild the full check and the risk model for every scenario — the
    /// reference the incremental mode is validated (and benchmarked) against.
    FromScratch,
}

/// Configuration of one fault campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Campaign {
    /// The policy generator for the reference fabric.
    pub workload: WorkloadKind,
    /// Number of scenarios to run.
    pub scenarios: usize,
    /// Maximum simultaneous object faults per scenario (at least 1 is used).
    pub max_faults: usize,
    /// Relative weights of the disturbance kinds.
    pub mix: ScenarioMix,
    /// The campaign seed; scenario `i` derives its own seed from it.
    pub seed: u64,
    /// Worker-thread policy.
    pub concurrency: Concurrency,
    /// Session reuse policy.
    pub analysis: AnalysisMode,
    /// The analysis-engine configuration (localization knobs, checker
    /// parallelism, cache budgets) every scenario runs under.
    pub engine: EngineConfig,
}

impl Campaign {
    /// A campaign with the default mix, fault bound, parallelism, incremental
    /// analysis and engine configuration.
    pub fn new(workload: WorkloadKind, scenarios: usize, seed: u64) -> Self {
        Self {
            workload,
            scenarios,
            max_faults: 3,
            mix: ScenarioMix::default(),
            seed,
            concurrency: Concurrency::Auto,
            analysis: AnalysisMode::Incremental,
            engine: EngineConfig::default(),
        }
    }

    fn thread_count(&self) -> usize {
        match self.concurrency {
            Concurrency::Sequential => 1,
            Concurrency::Threads(n) => n.max(1),
            Concurrency::Auto => std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(self.scenarios.max(1)),
        }
    }

    /// Deploys the reference fabric and runs every scenario against a
    /// private engine built from [`Campaign::engine`].
    ///
    /// The outcome vector is deterministic for a given configuration (thread
    /// count and analysis mode change only the wall-clock time).
    pub fn run(&self) -> CampaignRun {
        let engine = ScoutEngine::from_config(self.engine)
            .expect("campaign engine config is degenerate (see EngineConfig::validate)");
        self.run_with_engine(&engine)
    }

    /// Like [`Campaign::run`], but routes every worker through a
    /// caller-provided — possibly shared — engine: each worker opens its own
    /// [`AnalysisSession`](scout_core::AnalysisSession) on it, so several
    /// campaigns (or campaigns next to soak timelines) can share one engine.
    /// Outcomes are bit-identical to a private-engine run.
    pub fn run_with_engine(&self, engine: &ScoutEngine) -> CampaignRun {
        let start = Instant::now();
        let mut base = Fabric::new(self.workload.generate(self.seed));
        base.deploy();

        let threads = self.thread_count();
        let outcomes = if threads <= 1 {
            self.worker(engine, &base, 0, 1)
                .into_iter()
                .map(|(_, outcome)| outcome)
                .collect()
        } else {
            let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; self.scenarios];
            std::thread::scope(|scope| {
                let base = &base;
                let handles: Vec<_> = (0..threads)
                    .map(|worker| scope.spawn(move || self.worker(engine, base, worker, threads)))
                    .collect();
                for handle in handles {
                    for (index, outcome) in handle.join().expect("campaign worker panicked") {
                        slots[index] = Some(outcome);
                    }
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.expect("every scenario index is covered"))
                .collect()
        };

        CampaignRun {
            outcomes,
            elapsed: start.elapsed(),
        }
    }

    /// Runs the scenario indices `worker, worker + stride, …` on one thread.
    ///
    /// Each worker opens a private [`AnalysisSession`](scout_core::AnalysisSession)
    /// on the shared engine, so the warm BDD caches and the pristine risk
    /// model are reused across its scenarios without any cross-thread
    /// synchronization.
    fn worker(
        &self,
        engine: &ScoutEngine,
        base: &Fabric,
        worker: usize,
        stride: usize,
    ) -> Vec<(usize, ScenarioOutcome)> {
        let mut session = engine.open_session(base);
        (worker..self.scenarios)
            .step_by(stride.max(1))
            .map(|index| {
                let seed = scenario_seed(self.seed, index);
                let outcome = run_scenario(
                    &mut session,
                    self.analysis,
                    base,
                    index,
                    seed,
                    self.max_faults,
                    &self.mix,
                );
                (index, outcome)
            })
            .collect()
    }
}

/// Derives the private seed of scenario `index` from the campaign seed.
pub fn scenario_seed(campaign_seed: u64, index: usize) -> u64 {
    campaign_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64) << 17)
        .wrapping_add(index as u64)
}

/// The raw result of a campaign: per-scenario outcomes plus wall-clock time.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// One outcome per scenario, in scenario order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Total wall-clock time of the run (excluded from [`CampaignRun::report`],
    /// which must be deterministic).
    pub elapsed: Duration,
}

impl CampaignRun {
    /// Aggregates the outcomes into the deterministic campaign report.
    pub fn report(&self) -> CampaignReport {
        CampaignReport::of(&self.outcomes)
    }
}

/// Aggregated statistics of the scenarios of one kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStats {
    /// Number of scenarios of this kind.
    pub scenarios: usize,
    /// Scenarios with a non-empty ground truth.
    pub faulty: usize,
    /// Faulty scenarios the pipeline flagged as inconsistent.
    pub detected: usize,
    /// Faulty scenarios whose hypothesis intersected the truth.
    pub attributed: usize,
    /// SCOUT precision over the faulty scenarios.
    pub precision: Summary,
    /// SCOUT recall over the faulty scenarios.
    pub recall: Summary,
    /// SCORE-1.0 recall over the faulty scenarios.
    pub score_recall: Summary,
    /// γ over the detected scenarios.
    pub gamma: Summary,
}

/// The deterministic aggregate of one campaign: identical for identical
/// configurations, regardless of thread count or analysis mode.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Total number of scenarios.
    pub scenarios: usize,
    /// Per-kind breakdown (only kinds that occurred).
    pub per_kind: BTreeMap<ScenarioKind, KindStats>,
    /// SCOUT precision over faulty object-fault scenarios (full + partial).
    pub object_precision: Summary,
    /// SCOUT recall over faulty object-fault scenarios.
    pub object_recall: Summary,
    /// SCORE-1.0 recall over faulty object-fault scenarios.
    pub score_object_recall: Summary,
    /// SCOUT recall over faulty *partial* object-fault scenarios — the
    /// population where the paper's Figures 7/8 claim SCOUT beats SCORE.
    pub partial_recall: Summary,
    /// SCORE-1.0 recall over the same partial-fault population.
    pub score_partial_recall: Summary,
    /// Distribution of γ over all detected scenarios.
    pub gamma: Cdf,
}

impl CampaignReport {
    /// Aggregates a slice of outcomes (in scenario order).
    pub fn of(outcomes: &[ScenarioOutcome]) -> Self {
        let mut per_kind: BTreeMap<ScenarioKind, Vec<&ScenarioOutcome>> = BTreeMap::new();
        for outcome in outcomes {
            per_kind.entry(outcome.kind).or_default().push(outcome);
        }

        fn faulty<'a>(items: &[&'a ScenarioOutcome]) -> Vec<&'a ScenarioOutcome> {
            items
                .iter()
                .copied()
                .filter(|o| !o.truth.is_empty())
                .collect()
        }
        let stats = |items: &[&ScenarioOutcome]| -> KindStats {
            let with_truth = faulty(items);
            let detected: Vec<&&ScenarioOutcome> =
                with_truth.iter().filter(|o| !o.consistent).collect();
            KindStats {
                scenarios: items.len(),
                faulty: with_truth.len(),
                detected: detected.len(),
                attributed: with_truth.iter().filter(|o| o.attributed).count(),
                precision: Summary::of(with_truth.iter().map(|o| o.scout.precision)),
                recall: Summary::of(with_truth.iter().map(|o| o.scout.recall)),
                score_recall: Summary::of(with_truth.iter().map(|o| o.score.recall)),
                gamma: Summary::of(detected.iter().map(|o| o.gamma)),
            }
        };

        let object_outcomes: Vec<&ScenarioOutcome> = outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    ScenarioKind::FullObject | ScenarioKind::PartialObject
                ) && !o.truth.is_empty()
            })
            .collect();
        let partial_outcomes: Vec<&ScenarioOutcome> = object_outcomes
            .iter()
            .copied()
            .filter(|o| o.kind == ScenarioKind::PartialObject)
            .collect();

        CampaignReport {
            scenarios: outcomes.len(),
            per_kind: per_kind
                .into_iter()
                .map(|(kind, items)| (kind, stats(&items)))
                .collect(),
            object_precision: Summary::of(object_outcomes.iter().map(|o| o.scout.precision)),
            object_recall: Summary::of(object_outcomes.iter().map(|o| o.scout.recall)),
            score_object_recall: Summary::of(object_outcomes.iter().map(|o| o.score.recall)),
            partial_recall: Summary::of(partial_outcomes.iter().map(|o| o.scout.recall)),
            score_partial_recall: Summary::of(partial_outcomes.iter().map(|o| o.score.recall)),
            gamma: Cdf::of(
                outcomes
                    .iter()
                    .filter(|o| !o.truth.is_empty() && !o.consistent)
                    .map(|o| o.gamma),
            ),
        }
    }

    /// Renders the per-kind breakdown as an aligned table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Campaign — SCOUT vs SCORE-1.0 per scenario kind",
            &[
                "kind",
                "runs",
                "faulty",
                "detected",
                "attributed",
                "P(SCOUT)",
                "R(SCOUT)",
                "R(SCORE)",
                "mean γ",
            ],
        );
        for (kind, stats) in &self.per_kind {
            table.row([
                kind.to_string(),
                stats.scenarios.to_string(),
                stats.faulty.to_string(),
                stats.detected.to_string(),
                stats.attributed.to_string(),
                // A kind with no faulty (or no detected) scenarios has no
                // accuracy population; render "-" instead of a fabricated 0.
                fmt_mean(&stats.precision),
                fmt_mean(&stats.recall),
                fmt_mean(&stats.score_recall),
                fmt_mean(&stats.gamma),
            ]);
        }
        table
    }

    /// Renders the headline aggregates (the quantities the golden regression
    /// test gates on) as an aligned table.
    pub fn headline_table(&self) -> Table {
        let mut table = Table::new(
            "Campaign — headline aggregates",
            &["metric", "SCOUT", "SCORE-1.0"],
        );
        table.row([
            "object-fault precision (mean)".to_string(),
            fmt_mean(&self.object_precision),
            "-".to_string(),
        ]);
        table.row([
            "object-fault recall (mean)".to_string(),
            fmt_mean(&self.object_recall),
            fmt_mean(&self.score_object_recall),
        ]);
        table.row([
            "partial-fault recall (mean)".to_string(),
            fmt_mean(&self.partial_recall),
            fmt_mean(&self.score_partial_recall),
        ]);
        let gamma_cell = if self.gamma.is_empty() {
            "-".to_string()
        } else {
            format!(
                "{} (p50 {})",
                fmt3(self.gamma.summary().mean),
                fmt3(self.gamma.quantile(0.5))
            )
        };
        table.row(["suspect reduction γ".to_string(), gamma_cell, String::new()]);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_workload::TestbedSpec;

    fn small_campaign(seed: u64) -> Campaign {
        let spec = TestbedSpec {
            epgs: 12,
            contracts: 8,
            filters: 4,
            target_pairs: 20,
            switches: 3,
            tcam_capacity: 1024,
        };
        Campaign {
            scenarios: 16,
            max_faults: 2,
            ..Campaign::new(WorkloadKind::Testbed(spec), 16, seed)
        }
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let sequential = Campaign {
            concurrency: Concurrency::Sequential,
            ..small_campaign(42)
        };
        let threaded = Campaign {
            concurrency: Concurrency::Threads(4),
            ..small_campaign(42)
        };
        let a = sequential.run();
        let b = threaded.run();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.report(), b.report());
        // A different seed produces a different campaign.
        let c = Campaign {
            concurrency: Concurrency::Sequential,
            ..small_campaign(43)
        }
        .run();
        assert_ne!(a.outcomes, c.outcomes);
    }

    #[test]
    fn incremental_and_from_scratch_campaigns_agree() {
        let incremental = small_campaign(7).run();
        let scratch = Campaign {
            analysis: AnalysisMode::FromScratch,
            ..small_campaign(7)
        }
        .run();
        assert_eq!(incremental.outcomes, scratch.outcomes);
    }

    #[test]
    fn empty_report_renders_no_data_not_zeros() {
        let report = CampaignReport::of(&[]);
        assert_eq!(report.scenarios, 0);
        assert!(report.per_kind.is_empty());
        assert!(report.object_precision.is_empty());
        assert!(report.gamma.is_empty());
        // Empty populations render as "-", never as a fabricated 0.000.
        let text = report.headline_table().to_string();
        assert!(text.contains('-'));
        assert!(!text.contains("0.000"));
        assert!(report.table().is_empty());
    }

    #[test]
    fn single_scenario_report_is_well_formed() {
        let campaign = Campaign {
            scenarios: 1,
            concurrency: Concurrency::Sequential,
            mix: ScenarioMix::object_faults_only(),
            ..small_campaign(3)
        };
        let run = campaign.run();
        let report = run.report();
        assert_eq!(report.scenarios, 1);
        let (kind, stats) = report.per_kind.iter().next().unwrap();
        assert_eq!(stats.scenarios, 1);
        // A single faulty scenario yields degenerate (stddev 0) but real
        // summaries for its own kind…
        if stats.faulty == 1 {
            assert_eq!(stats.precision.count, 1);
            assert_eq!(stats.precision.stddev, 0.0);
        }
        // …and "-" cells for the kind that never occurred.
        let other = match kind {
            ScenarioKind::FullObject => ScenarioKind::PartialObject,
            _ => ScenarioKind::FullObject,
        };
        assert!(!report.per_kind.contains_key(&other));
        let text = report.table().to_string();
        assert_eq!(report.table().len(), 1);
        assert!(text.contains(&kind.to_string()));
        // γ distribution has at most one point; headline renders without panic.
        let _ = report.headline_table().to_string();
        assert!(report.gamma.len() <= 1);
    }

    #[test]
    fn kind_stats_with_no_detection_render_dash_gamma() {
        // Hand-build one undetected faulty outcome: truth exists, pipeline saw
        // nothing (consistent), so the γ population for the kind is empty.
        let outcome = ScenarioOutcome {
            index: 0,
            seed: 1,
            kind: ScenarioKind::Physical,
            fault_count: 1,
            truth: std::iter::once(scout_policy::ObjectId::Switch(scout_policy::SwitchId::new(
                1,
            )))
            .collect(),
            hypothesis: Default::default(),
            suspects: Default::default(),
            consistent: true,
            missing_rules: 0,
            observations: 0,
            explained_by_cover: 0,
            explained_by_changelog: 0,
            unexplained: 0,
            gamma: 0.0,
            scout: scout_metrics::Accuracy::of(&Default::default(), &Default::default()),
            score: scout_metrics::Accuracy::of(&Default::default(), &Default::default()),
            attributed: false,
        };
        let report = CampaignReport::of(&[outcome]);
        let stats = &report.per_kind[&ScenarioKind::Physical];
        assert_eq!(stats.faulty, 1);
        assert_eq!(stats.detected, 0);
        assert!(stats.gamma.is_empty());
        let text = report.table().to_string();
        // The γ column of the row must be "-", not 0.000.
        assert!(text
            .lines()
            .any(|l| l.contains("physical") && l.trim_end().ends_with('-')));
    }

    #[test]
    fn report_aggregates_cover_every_scenario() {
        let run = small_campaign(11).run();
        let report = run.report();
        assert_eq!(report.scenarios, 16);
        let counted: usize = report.per_kind.values().map(|s| s.scenarios).sum();
        assert_eq!(counted, 16);
        for stats in report.per_kind.values() {
            assert!(stats.detected <= stats.faulty);
            assert!(stats.attributed <= stats.faulty);
        }
        assert!(!report.table().is_empty());
        assert_eq!(report.headline_table().len(), 4);
        // γ samples come from detected scenarios only and lie in (0, 1].
        for (gamma, _) in report.gamma.points() {
            assert!(gamma > 0.0 && gamma <= 1.0);
        }
    }
}
