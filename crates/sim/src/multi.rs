//! Multi-tenant soak: many independent fault timelines, one shared engine,
//! many driver threads.
//!
//! A production SCOUT deployment monitors a whole controller domain — every
//! tenant fabric at once — through one long-lived service. [`MultiTenantSoak`]
//! reproduces that shape in the simulator: it builds **one**
//! [`ScoutEngine`] (which is `Send + Sync` with a lock-striped session
//! registry), derives M independent per-tenant [`Timeline`]s from a base
//! seed, and drives them from up to T worker threads, each tenant monitored
//! by its own [`AnalysisSession`](scout_core::AnalysisSession) on the shared
//! engine.
//!
//! Determinism is preserved under concurrency: per-session ingestion is
//! serialized inside each session, sessions share no mutable analysis state,
//! and each tenant's randomness derives only from its own seed — so tenant
//! `i`'s [`SoakOutcome`] is **bit-identical** whether it runs alone on a
//! private engine, sequentially on the shared engine, or concurrently next
//! to M−1 other tenants (enforced by the root test `tests/multi_tenant.rs`).
//! What changes with the thread count is only the wall-clock time, which is
//! exactly what the scale-sweep bench measures.

use std::time::{Duration, Instant};

use scout_core::{EngineConfig, OracleCadence, ScoutEngine};
use scout_metrics::{fmt3, Table};

use crate::scenario::WorkloadKind;
use crate::soak::{SoakOutcome, SoakRun, Timeline};

/// A multi-tenant soak configuration: M timelines × T driver threads against
/// one shared engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTenantSoak {
    /// The per-tenant policy generator (tenant `i` generates from
    /// `base_seed + i`).
    pub workload: WorkloadKind,
    /// Number of tenant fabrics (and timelines, and sessions).
    pub tenants: usize,
    /// Number of epochs each timeline runs.
    pub epochs: usize,
    /// The base seed; tenant `i` runs [`Timeline`] seed `base_seed + i`.
    pub base_seed: u64,
    /// Number of driver threads (clamped to the tenant count; at least 1).
    pub threads: usize,
    /// The shared engine's configuration — including the oracle cadence every
    /// tenant runs under.
    pub engine: EngineConfig,
}

impl MultiTenantSoak {
    /// A multi-tenant soak with the default engine configuration and an
    /// every-epoch oracle.
    pub fn new(workload: WorkloadKind, tenants: usize, epochs: usize, base_seed: u64) -> Self {
        Self {
            workload,
            tenants,
            epochs,
            base_seed,
            threads: tenants.max(1),
            engine: EngineConfig::default(),
        }
    }

    /// Switches the oracle off — the pure-throughput shape the scale-sweep
    /// bench uses.
    pub fn without_oracle(mut self) -> Self {
        self.engine.oracle = OracleCadence::Never;
        self
    }

    /// The timeline tenant `index` runs (exposed so tests can replay a single
    /// tenant in isolation and compare outcomes).
    pub fn tenant_timeline(&self, index: usize) -> Timeline {
        let mut timeline = Timeline::new(self.workload, self.epochs, self.base_seed + index as u64);
        timeline.engine = self.engine;
        timeline
    }

    /// Runs every tenant timeline against one shared engine and collects the
    /// per-tenant runs in tenant order.
    pub fn run(&self) -> MultiTenantRun {
        let start = Instant::now();
        let engine = ScoutEngine::from_config(self.engine)
            .expect("multi-tenant engine config is degenerate (see EngineConfig::validate)");
        let threads = self.threads.clamp(1, self.tenants.max(1));

        let mut runs: Vec<Option<SoakRun>> = (0..self.tenants).map(|_| None).collect();
        if threads <= 1 {
            for (tenant, slot) in runs.iter_mut().enumerate() {
                *slot = Some(self.tenant_timeline(tenant).run_with_engine(&engine));
            }
        } else {
            std::thread::scope(|scope| {
                let engine = &engine;
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        scope.spawn(move || {
                            (worker..self.tenants)
                                .step_by(threads)
                                .map(|tenant| {
                                    (tenant, self.tenant_timeline(tenant).run_with_engine(engine))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (tenant, run) in handle.join().expect("tenant driver thread panicked") {
                        runs[tenant] = Some(run);
                    }
                }
            });
        }

        MultiTenantRun {
            runs: runs
                .into_iter()
                .map(|slot| slot.expect("every tenant index is covered"))
                .collect(),
            threads,
            elapsed: start.elapsed(),
        }
    }
}

/// The result of one multi-tenant soak: per-tenant runs plus the aggregate
/// wall-clock cost of driving them with the configured thread count.
#[derive(Debug)]
pub struct MultiTenantRun {
    /// One [`SoakRun`] per tenant, in tenant order.
    pub runs: Vec<SoakRun>,
    /// The number of driver threads actually used.
    pub threads: usize,
    /// Wall-clock time of the whole sweep (engine build included).
    pub elapsed: Duration,
}

impl MultiTenantRun {
    /// The deterministic per-tenant outcomes, in tenant order.
    pub fn outcomes(&self) -> Vec<&SoakOutcome> {
        self.runs.iter().map(|run| &run.outcome).collect()
    }

    /// Total successful ingests across all tenant sessions.
    pub fn total_ingests(&self) -> usize {
        self.runs.iter().map(|run| run.session_stats.ingests).sum()
    }

    /// Total events ingested across all tenant sessions.
    pub fn total_events(&self) -> usize {
        self.runs.iter().map(|run| run.session_stats.events).sum()
    }

    /// Aggregate ingest throughput: batches ingested across every tenant per
    /// second of wall-clock time — the quantity that must scale with the
    /// driver thread count on a multi-core host.
    pub fn ingests_per_sec(&self) -> f64 {
        self.total_ingests() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Epochs at which any tenant's differential oracle disagreed with its
    /// monitor, as `(tenant, epoch)` pairs (must be empty).
    pub fn oracle_disagreements(&self) -> Vec<(usize, usize)> {
        self.runs
            .iter()
            .enumerate()
            .flat_map(|(tenant, run)| {
                run.outcome
                    .oracle_disagreements()
                    .into_iter()
                    .map(move |epoch| (tenant, epoch))
            })
            .collect()
    }

    /// Renders the per-tenant summary as an aligned table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Multi-tenant soak — per tenant",
            &[
                "tenant",
                "epochs",
                "ingests",
                "events",
                "injections",
                "oracle",
            ],
        );
        for (tenant, run) in self.runs.iter().enumerate() {
            let disagreements = run.outcome.oracle_disagreements().len();
            table.row([
                tenant.to_string(),
                run.outcome.epochs.len().to_string(),
                run.session_stats.ingests.to_string(),
                run.session_stats.events.to_string(),
                run.outcome.faults.len().to_string(),
                if disagreements == 0 {
                    "ok".to_string()
                } else {
                    format!("{disagreements} DISAGREEMENTS")
                },
            ]);
        }
        table.row([
            "total".to_string(),
            String::new(),
            self.total_ingests().to_string(),
            self.total_events().to_string(),
            String::new(),
            format!("{} ingests/s", fmt3(self.ingests_per_sec())),
        ]);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_workload::TestbedSpec;

    fn small_soak(tenants: usize, threads: usize) -> MultiTenantSoak {
        let spec = TestbedSpec {
            epgs: 10,
            contracts: 6,
            filters: 4,
            target_pairs: 14,
            switches: 3,
            tcam_capacity: 1024,
        };
        MultiTenantSoak {
            threads,
            ..MultiTenantSoak::new(WorkloadKind::Testbed(spec), tenants, 25, 17)
        }
    }

    #[test]
    fn concurrent_tenants_match_sequential_and_solo_runs() {
        let concurrent = small_soak(3, 3).run();
        let sequential = small_soak(3, 1).run();
        assert_eq!(concurrent.runs.len(), 3);
        assert_eq!(concurrent.threads, 3);
        assert_eq!(sequential.threads, 1);
        for tenant in 0..3 {
            assert_eq!(
                concurrent.runs[tenant].outcome, sequential.runs[tenant].outcome,
                "tenant {tenant}: shared-engine concurrency changed the outcome"
            );
            // A solo run on a private engine agrees too.
            let solo = small_soak(3, 1).tenant_timeline(tenant).run();
            assert_eq!(concurrent.runs[tenant].outcome, solo.outcome);
        }
        assert!(concurrent.oracle_disagreements().is_empty());
        assert!(concurrent.total_ingests() >= 75, "one ingest per epoch");
        assert!(concurrent.ingests_per_sec() > 0.0);
    }

    #[test]
    fn tenants_are_distinct_workloads() {
        let run = small_soak(2, 2).run();
        assert_ne!(
            run.runs[0].outcome, run.runs[1].outcome,
            "tenant seeds must differ"
        );
        let table = run.table().to_string();
        assert!(table.contains("ingests/s"));
        assert!(!table.contains("DISAGREEMENTS"));
    }

    #[test]
    fn thread_count_is_clamped() {
        let run = small_soak(2, 9).run();
        assert_eq!(run.threads, 2);
        assert_eq!(run.runs.len(), 2);
    }

    #[test]
    fn without_oracle_disables_scratch_analysis() {
        let run = small_soak(2, 2).without_oracle().run();
        for tenant_run in &run.runs {
            assert!(tenant_run.scratch_cost.is_empty());
            assert!(tenant_run.outcome.epochs.iter().all(|e| !e.oracle_checked));
        }
    }
}
