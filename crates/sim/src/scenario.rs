//! Single-scenario sampling and execution.
//!
//! A *scenario* is one seeded experiment of the campaign engine: start from a
//! deployed reference fabric, apply a randomized disturbance (object faults,
//! physical faults, switch churn or concurrent policy updates), run the full
//! SCOUT pipeline, and score the result against the ground truth. Every
//! decision a scenario makes is derived from its seed, so a scenario is fully
//! reproducible in isolation — the property that lets campaigns run scenarios
//! in parallel and still aggregate deterministic reports.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout_core::{score_localize, AnalysisSession};
use scout_fabric::Fabric;
use scout_faults::{random_tcam_corruption, silent_rule_eviction, FaultInjector, ObjectFaultKind};
use scout_metrics::Accuracy;
use scout_policy::{ObjectId, PolicyUniverse};
use scout_workload::{add_random_filter, random_policy_edit, ClusterSpec, ScaleSpec, TestbedSpec};

use crate::campaign::AnalysisMode;

/// Which policy generator a campaign samples its reference fabric from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// The production-cluster-like policy (`scout_workload::ClusterSpec`).
    Cluster(ClusterSpec),
    /// The physical-testbed policy (`scout_workload::TestbedSpec`).
    Testbed(TestbedSpec),
    /// The per-switch replicated scaling policy (`scout_workload::ScaleSpec`).
    Scale(ScaleSpec),
}

impl WorkloadKind {
    /// Generates the policy universe for this workload with the given seed.
    pub fn generate(&self, seed: u64) -> PolicyUniverse {
        match self {
            WorkloadKind::Cluster(spec) => spec.generate(seed),
            WorkloadKind::Testbed(spec) => spec.generate(seed),
            WorkloadKind::Scale(spec) => spec.generate(seed),
        }
    }
}

/// The disturbance class of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScenarioKind {
    /// 1–k full object faults: every rule of each faulty object is lost.
    FullObject,
    /// 1–k partial object faults: a strict subset of each object's rules is
    /// lost, so the object's hit ratio stays below 1.
    PartialObject,
    /// A physical switch-level fault: silent TCAM corruption or eviction.
    Physical,
    /// Switch churn: a control channel flaps while a policy update is rolled
    /// out, so the flapping switch misses the update.
    Churn,
    /// Concurrent policy updates racing an object fault: benign edits land
    /// immediately before and after the fault, polluting the change log.
    ConcurrentUpdate,
}

impl ScenarioKind {
    /// All kinds, in report order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::FullObject,
        ScenarioKind::PartialObject,
        ScenarioKind::Physical,
        ScenarioKind::Churn,
        ScenarioKind::ConcurrentUpdate,
    ];
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ScenarioKind::FullObject => "full-object",
            ScenarioKind::PartialObject => "partial-object",
            ScenarioKind::Physical => "physical",
            ScenarioKind::Churn => "churn",
            ScenarioKind::ConcurrentUpdate => "concurrent-update",
        };
        f.write_str(name)
    }
}

/// Relative weights of the scenario kinds in a campaign. A kind with weight 0
/// never occurs; at least one weight must be positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioMix {
    /// Weight of [`ScenarioKind::FullObject`].
    pub full_object: u32,
    /// Weight of [`ScenarioKind::PartialObject`].
    pub partial_object: u32,
    /// Weight of [`ScenarioKind::Physical`].
    pub physical: u32,
    /// Weight of [`ScenarioKind::Churn`].
    pub churn: u32,
    /// Weight of [`ScenarioKind::ConcurrentUpdate`].
    pub concurrent_update: u32,
}

impl Default for ScenarioMix {
    /// The default mix leans on the object faults the paper evaluates while
    /// keeping every disturbance class present.
    fn default() -> Self {
        Self {
            full_object: 4,
            partial_object: 4,
            physical: 2,
            churn: 1,
            concurrent_update: 1,
        }
    }
}

impl ScenarioMix {
    /// Only full and partial object faults — the population of the paper's
    /// accuracy figures.
    pub fn object_faults_only() -> Self {
        Self {
            full_object: 1,
            partial_object: 1,
            physical: 0,
            churn: 0,
            concurrent_update: 0,
        }
    }

    fn weights(&self) -> [(ScenarioKind, u32); 5] {
        [
            (ScenarioKind::FullObject, self.full_object),
            (ScenarioKind::PartialObject, self.partial_object),
            (ScenarioKind::Physical, self.physical),
            (ScenarioKind::Churn, self.churn),
            (ScenarioKind::ConcurrentUpdate, self.concurrent_update),
        ]
    }

    /// Samples a kind according to the weights.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ScenarioKind {
        let weights = self.weights();
        let total: u32 = weights.iter().map(|(_, w)| w).sum();
        assert!(total > 0, "scenario mix must have a positive weight");
        let mut pick = rng.gen_range(0..total);
        for (kind, weight) in weights {
            if pick < weight {
                return kind;
            }
            pick -= weight;
        }
        unreachable!("pick is bounded by the total weight")
    }
}

/// The scored result of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Position of the scenario within its campaign.
    pub index: usize,
    /// The scenario's private seed (derived from the campaign seed).
    pub seed: u64,
    /// The disturbance class that was applied.
    pub kind: ScenarioKind,
    /// Number of injected faults (object faults injected, or 1 for the
    /// physical/churn disturbances; 0 if the disturbance turned out inert).
    pub fault_count: usize,
    /// The ground truth: objects a perfect localizer should implicate.
    pub truth: BTreeSet<ObjectId>,
    /// SCOUT's hypothesis.
    pub hypothesis: BTreeSet<ObjectId>,
    /// The pre-localization suspect set (what an admin would examine).
    pub suspects: BTreeSet<ObjectId>,
    /// `true` if the pipeline found no L–T divergence.
    pub consistent: bool,
    /// Total missing rules reported by the equivalence check.
    pub missing_rules: usize,
    /// Number of failed observations.
    pub observations: usize,
    /// Observations explained by the greedy-cover stage.
    pub explained_by_cover: usize,
    /// Observations attributed through the change log.
    pub explained_by_changelog: usize,
    /// Observations left unexplained.
    pub unexplained: usize,
    /// The suspect-set reduction ratio γ of the run.
    pub gamma: f64,
    /// SCOUT precision/recall against the ground truth.
    pub scout: Accuracy,
    /// SCORE-1.0 precision/recall against the same ground truth and model.
    pub score: Accuracy,
    /// `true` if SCOUT pointed at the ground truth: the hypothesis intersects
    /// a non-empty truth, or both are empty (nothing to find, nothing
    /// reported).
    pub attributed: bool,
}

/// A mutated fabric plus its ground truth, ready for analysis.
struct PreparedScenario {
    fabric: Fabric,
    kind: ScenarioKind,
    fault_count: usize,
    truth: BTreeSet<ObjectId>,
}

/// Derives the injector seed from the scenario seed; the two streams must be
/// independent so adding a sampling decision never perturbs the injection.
fn injector_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0xB5)
}

/// Samples and applies one disturbance to a clone of `base`.
fn prepare(base: &Fabric, seed: u64, max_faults: usize, mix: &ScenarioMix) -> PreparedScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let kind = mix.sample(&mut rng);
    let mut fabric = base.clone();
    let mut truth = BTreeSet::new();
    let mut fault_count = 0usize;
    let max_faults = max_faults.max(1);

    match kind {
        ScenarioKind::FullObject | ScenarioKind::PartialObject => {
            let forced = if kind == ScenarioKind::FullObject {
                ObjectFaultKind::Full
            } else {
                ObjectFaultKind::Partial
            };
            let count = rng.gen_range(1..=max_faults);
            let mut injector = FaultInjector::new(StdRng::seed_from_u64(injector_seed(seed)));
            let injected = injector.inject_object_faults_of(&mut fabric, count, forced);
            fault_count = injected.len();
            truth = injected.objects();
        }
        ScenarioKind::Physical => {
            let switches = fabric.universe().switch_ids();
            let &switch = switches.choose(&mut rng).expect("workloads have switches");
            let fault = if rng.gen_bool(0.5) {
                let count = rng.gen_range(1..=3);
                random_tcam_corruption(&mut fabric, switch, count, &mut rng)
            } else {
                let count = rng.gen_range(1..=3);
                silent_rule_eviction(&mut fabric, switch, count)
            };
            if !fault.affected_rules.is_empty() {
                fault_count = 1;
                truth = fault.affected_objects(&fabric);
                truth.insert(ObjectId::Switch(switch));
            }
        }
        ScenarioKind::Churn => {
            let switches = fabric.universe().switch_ids();
            let &switch = switches.choose(&mut rng).expect("workloads have switches");
            fabric.disconnect_switch(switch);
            let universe = fabric.universe().clone();
            if let Some(edit) = add_random_filter(&universe, &mut rng) {
                fabric.update_policy(edit.universe);
                // The flapped switch missed the rollout iff the edit rendered
                // rules onto it; otherwise the flap was harmless.
                let lost = fabric
                    .logical_rules()
                    .iter()
                    .filter(|r| r.switch == switch && r.provenance.filter == edit.filter)
                    .count();
                if lost > 0 {
                    fault_count = 1;
                    truth.insert(ObjectId::Switch(switch));
                    truth.insert(ObjectId::Filter(edit.filter));
                    truth.insert(ObjectId::Contract(edit.contract));
                }
            }
            fabric.reconnect_switch(switch);
        }
        ScenarioKind::ConcurrentUpdate => {
            // Benign edit, fault, benign edit: the change log fills with
            // recent innocent modifications around the faulty one.
            let universe = fabric.universe().clone();
            if let Some(edit) = add_random_filter(&universe, &mut rng) {
                fabric.update_policy(edit.universe);
            }
            let count = rng.gen_range(1..=max_faults);
            let mut injector = FaultInjector::new(StdRng::seed_from_u64(injector_seed(seed)));
            let injected = injector.inject_object_faults(&mut fabric, count);
            fault_count = injected.len();
            truth = injected.objects();
            let universe = fabric.universe().clone();
            if let Some(edit) = random_policy_edit(&universe, &mut rng) {
                fabric.update_policy(edit.universe);
            }
        }
    }

    PreparedScenario {
        fabric,
        kind,
        fault_count,
        truth,
    }
}

/// Runs one scenario end to end through the worker's [`AnalysisSession`].
///
/// In [`AnalysisMode::Incremental`] the analysis reuses the session's
/// equivalence check and pristine risk model; in
/// [`AnalysisMode::FromScratch`] every stage is rebuilt from scratch through
/// the same session. Both modes produce bit-identical outcomes. SCORE shares
/// the single augment/rollback cycle of the SCOUT analysis either way (on a
/// consistent fabric it sees an empty signature and returns an empty
/// hypothesis immediately).
pub fn run_scenario(
    session: &mut AnalysisSession,
    mode: AnalysisMode,
    base: &Fabric,
    index: usize,
    seed: u64,
    max_faults: usize,
    mix: &ScenarioMix,
) -> ScenarioOutcome {
    let prepared = prepare(base, seed, max_faults, mix);
    let fabric = &prepared.fabric;

    let (report, score) = match mode {
        AnalysisMode::Incremental => {
            session.analyze_clone_with(fabric, |model| score_localize(model, 1.0))
        }
        AnalysisMode::FromScratch => {
            session.analyze_scratch_with(fabric, |model| score_localize(model, 1.0))
        }
    };
    let score_objects = score.objects();

    let hypothesis = report.hypothesis.objects();
    let truth = prepared.truth;
    let attributed = if truth.is_empty() {
        hypothesis.is_empty()
    } else {
        !hypothesis.is_disjoint(&truth)
    };
    ScenarioOutcome {
        index,
        seed,
        kind: prepared.kind,
        fault_count: prepared.fault_count,
        scout: Accuracy::of(&truth, &hypothesis),
        score: Accuracy::of(&truth, &score_objects),
        attributed,
        consistent: report.is_consistent(),
        missing_rules: report.missing_rule_count(),
        observations: report.hypothesis.observations,
        explained_by_cover: report.hypothesis.explained_by_cover,
        explained_by_changelog: report.hypothesis.explained_by_changelog,
        unexplained: report.hypothesis.unexplained,
        gamma: report.gamma(),
        suspects: report.suspect_objects,
        hypothesis,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_core::ScoutEngine;

    fn testbed_base() -> Fabric {
        let spec = TestbedSpec {
            epgs: 12,
            contracts: 8,
            filters: 4,
            target_pairs: 20,
            switches: 3,
            tcam_capacity: 1024,
        };
        let mut fabric = Fabric::new(spec.generate(5));
        fabric.deploy();
        fabric
    }

    #[test]
    fn mix_sampling_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = ScenarioMix::object_faults_only();
        for _ in 0..100 {
            let kind = mix.sample(&mut rng);
            assert!(matches!(
                kind,
                ScenarioKind::FullObject | ScenarioKind::PartialObject
            ));
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_mix_panics() {
        let mix = ScenarioMix {
            full_object: 0,
            partial_object: 0,
            physical: 0,
            churn: 0,
            concurrent_update: 0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let _ = mix.sample(&mut rng);
    }

    #[test]
    fn incremental_and_from_scratch_scenarios_agree() {
        let base = testbed_base();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&base);
        let mix = ScenarioMix::default();
        for seed in 0..12u64 {
            let incremental = run_scenario(
                &mut session,
                AnalysisMode::Incremental,
                &base,
                0,
                seed,
                3,
                &mix,
            );
            let from_scratch = run_scenario(
                &mut session,
                AnalysisMode::FromScratch,
                &base,
                0,
                seed,
                3,
                &mix,
            );
            assert_eq!(incremental, from_scratch, "seed {seed}");
        }
    }

    #[test]
    fn object_scenarios_localize_their_faults() {
        let base = testbed_base();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&base);
        let mix = ScenarioMix::object_faults_only();
        let mut attributed = 0usize;
        let mut faulty = 0usize;
        for seed in 0..10u64 {
            let outcome = run_scenario(
                &mut session,
                AnalysisMode::Incremental,
                &base,
                0,
                seed,
                2,
                &mix,
            );
            assert!(outcome
                .hypothesis
                .iter()
                .all(|o| outcome.suspects.contains(o)));
            if !outcome.truth.is_empty() {
                faulty += 1;
                assert!(!outcome.consistent, "seed {seed}");
                if outcome.attributed {
                    attributed += 1;
                }
            }
        }
        assert!(faulty > 0);
        assert!(attributed * 2 > faulty, "most faults should be attributed");
    }
}
