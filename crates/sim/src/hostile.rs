//! The hostile-telemetry scenario suite: SCOUT under lying, lossy, and torn
//! inputs.
//!
//! Every other engine in this crate feeds the pipeline *cleanly observed*
//! faults: batches arrive in order, TCAM reads are atomic, fault logs are
//! complete. This module drops those courtesies. A [`HostileCampaign`] runs
//! five seeded scenario classes ([`HostileKind`]) the clean engines cannot
//! express — dropped/reordered [`EventBatch`]es, stale/torn `TcamSync` reads
//! taken mid-update, flapping faults inside one epoch, correlated gray
//! failures spanning many switches, and wiped fault logs — and scores SCOUT
//! against the SCORE baseline on the telemetry that survived.
//!
//! The suite exercises the two degraded-input features of the engine: epoch
//! gaps are recovered through
//! [`AnalysisSession::resync`](scout_core::AnalysisSession::resync) fed a
//! [`FabricProbe::full_resync`] read, and absent fault logs fall back to the
//! ranked partial diagnoses of
//! [`CorrelationEngine::rank_partial`](scout_core::CorrelationEngine::rank_partial)
//! instead of silence. The enforced root suite `tests/hostile.rs` pins
//! per-class accuracy floors on this module's fixed-seed output.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout_core::{
    score_localize, AnalysisSession, EngineConfig, PartialDiagnosis, ScoutEngine, ScoutReport,
    SessionError,
};
use scout_fabric::{EventBatch, Fabric, FabricEvent, FabricProbe, FaultKind, FaultLog, Severity};
use scout_faults::{FaultInjector, ObjectFaultKind};
use scout_metrics::{fmt_mean, Accuracy, RankQuality, Summary, Table};
use scout_policy::{ObjectId, SwitchId, TcamRule};

use crate::campaign::Concurrency;
use crate::scenario::WorkloadKind;

/// The hostile disturbance classes, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostileKind {
    /// A lossy probe: event batches are dropped and reordered in transit,
    /// forcing epoch-gap detection and full-resync recovery.
    LossyProbe,
    /// A torn `TcamSync`: the poller walks a switch's table while an update
    /// lands, mixing fresh and stale pages in one read.
    TornSync,
    /// Flapping faults: several raise/repair cycles collapse into a single
    /// epoch's batch before a real break lands.
    Flapping,
    /// A correlated gray failure: partial object faults across many switches
    /// with only *some* of the degraded links logging anything.
    GrayFailure,
    /// Missing fault logs: the fault log is wiped after injection, leaving
    /// only the change log and the ranked partial diagnosis.
    MissingLogs,
}

impl HostileKind {
    /// All classes, in report order.
    pub const ALL: [HostileKind; 5] = [
        HostileKind::LossyProbe,
        HostileKind::TornSync,
        HostileKind::Flapping,
        HostileKind::GrayFailure,
        HostileKind::MissingLogs,
    ];
}

impl fmt::Display for HostileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            HostileKind::LossyProbe => "lossy-probe",
            HostileKind::TornSync => "torn-sync",
            HostileKind::Flapping => "flapping",
            HostileKind::GrayFailure => "gray-failure",
            HostileKind::MissingLogs => "missing-logs",
        };
        f.write_str(name)
    }
}

/// Derives the private seed of scenario `index` of `kind` from the campaign
/// seed. Classes use disjoint streams so reordering the class list never
/// perturbs another class's scenarios.
pub fn hostile_seed(campaign_seed: u64, kind: HostileKind, index: usize) -> u64 {
    let class_salt = (kind as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    campaign_seed
        .wrapping_mul(0xD6E8_FEB8_6659_FD93)
        .wrapping_add(class_salt)
        .wrapping_add((index as u64) << 13)
        .wrapping_add(index as u64)
}

/// Derives the injector seed from the scenario seed, mirroring the clean
/// campaign engine: the sampling and injection streams stay independent.
fn injector_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0xB5)
}

/// Configuration of one hostile-telemetry campaign: `per_class` scenarios of
/// *each* of the five [`HostileKind`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostileCampaign {
    /// The policy generator for the reference fabric.
    pub workload: WorkloadKind,
    /// Scenarios per hostile class (the run executes `5 * per_class`).
    pub per_class: usize,
    /// Maximum simultaneous object faults per scenario (at least 1 is used).
    pub max_faults: usize,
    /// The campaign seed; scenario `i` of each class derives its own seed.
    pub seed: u64,
    /// Worker-thread policy.
    pub concurrency: Concurrency,
    /// The analysis-engine configuration every scenario runs under.
    pub engine: EngineConfig,
}

impl HostileCampaign {
    /// A hostile campaign with the default fault bound, parallelism and
    /// engine configuration.
    pub fn new(workload: WorkloadKind, per_class: usize, seed: u64) -> Self {
        Self {
            workload,
            per_class,
            max_faults: 3,
            seed,
            concurrency: Concurrency::Auto,
            engine: EngineConfig::default(),
        }
    }

    fn total(&self) -> usize {
        self.per_class * HostileKind::ALL.len()
    }

    fn thread_count(&self) -> usize {
        match self.concurrency {
            Concurrency::Sequential => 1,
            Concurrency::Threads(n) => n.max(1),
            Concurrency::Auto => std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(self.total().max(1)),
        }
    }

    /// Deploys the reference fabric and runs every scenario of every class
    /// against a private engine built from [`HostileCampaign::engine`].
    ///
    /// The outcome vector is deterministic for a given configuration (thread
    /// count changes only the wall-clock time).
    pub fn run(&self) -> HostileRun {
        let engine = ScoutEngine::from_config(self.engine)
            .expect("hostile campaign engine config is degenerate (see EngineConfig::validate)");
        self.run_with_engine(&engine)
    }

    /// Like [`HostileCampaign::run`], but routes every worker through a
    /// caller-provided — possibly shared — engine.
    pub fn run_with_engine(&self, engine: &ScoutEngine) -> HostileRun {
        let start = Instant::now();
        let mut base = Fabric::new(self.workload.generate(self.seed));
        base.deploy();

        let threads = self.thread_count();
        let outcomes = if threads <= 1 {
            self.worker(engine, &base, 0, 1)
                .into_iter()
                .map(|(_, outcome)| outcome)
                .collect()
        } else {
            let mut slots: Vec<Option<HostileOutcome>> = vec![None; self.total()];
            std::thread::scope(|scope| {
                let base = &base;
                let handles: Vec<_> = (0..threads)
                    .map(|worker| scope.spawn(move || self.worker(engine, base, worker, threads)))
                    .collect();
                for handle in handles {
                    for (index, outcome) in handle.join().expect("hostile worker panicked") {
                        slots[index] = Some(outcome);
                    }
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.expect("every scenario index is covered"))
                .collect()
        };

        HostileRun {
            outcomes,
            elapsed: start.elapsed(),
        }
    }

    /// Runs the scenario indices `worker, worker + stride, …` on one thread.
    /// One-shot classes share the worker's base session (the campaign
    /// pattern); streaming classes open a private session per scenario, since
    /// each one drives its own epoch sequence.
    fn worker(
        &self,
        engine: &ScoutEngine,
        base: &Fabric,
        worker: usize,
        stride: usize,
    ) -> Vec<(usize, HostileOutcome)> {
        let mut base_session = engine.open_session(base);
        (worker..self.total())
            .step_by(stride.max(1))
            .map(|index| {
                let kind = HostileKind::ALL[index / self.per_class];
                let seed = hostile_seed(self.seed, kind, index % self.per_class);
                let outcome = run_hostile_scenario(
                    engine,
                    &mut base_session,
                    base,
                    index,
                    seed,
                    kind,
                    self.max_faults,
                );
                (index, outcome)
            })
            .collect()
    }
}

/// The scored result of one hostile scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct HostileOutcome {
    /// Position of the scenario within its campaign.
    pub index: usize,
    /// The scenario's private seed.
    pub seed: u64,
    /// The hostile class that was applied.
    pub kind: HostileKind,
    /// The ground truth: objects a perfect localizer should implicate.
    pub truth: BTreeSet<ObjectId>,
    /// SCOUT's hypothesis, computed from the surviving telemetry.
    pub hypothesis: BTreeSet<ObjectId>,
    /// The pre-localization suspect set.
    pub suspects: BTreeSet<ObjectId>,
    /// `true` if the pipeline found no L–T divergence.
    pub consistent: bool,
    /// The suspect-set reduction ratio γ of the run.
    pub gamma: f64,
    /// SCOUT precision/recall against the ground truth.
    pub scout: Accuracy,
    /// SCORE-1.0 precision/recall on identical evidence.
    pub score: Accuracy,
    /// `true` if SCOUT pointed at the ground truth (or both sets are empty).
    pub attributed: bool,
    /// Full resyncs the session needed to survive the scenario.
    pub resyncs: usize,
    /// Batches the hostile transport disturbed (dropped, reordered or torn).
    pub disturbed_batches: usize,
    /// `true` if the ranked partial diagnosis was non-empty.
    pub ranked_nonempty: bool,
    /// Best 1-based rank of any ground-truth object in the partial
    /// diagnosis (`None` = miss, or nothing to find).
    pub diagnosis_rank: Option<usize>,
}

/// Runs one hostile scenario end to end.
#[allow(clippy::too_many_arguments)]
fn run_hostile_scenario(
    engine: &ScoutEngine,
    base_session: &mut AnalysisSession,
    base: &Fabric,
    index: usize,
    seed: u64,
    kind: HostileKind,
    max_faults: usize,
) -> HostileOutcome {
    match kind {
        HostileKind::LossyProbe => lossy_probe(engine, base, index, seed, max_faults),
        HostileKind::TornSync => torn_sync(engine, base, index, seed, max_faults),
        HostileKind::Flapping => flapping(engine, base, index, seed, max_faults),
        HostileKind::GrayFailure => {
            gray_failure(engine, base_session, base, index, seed, max_faults)
        }
        HostileKind::MissingLogs => {
            missing_logs(engine, base_session, base, index, seed, max_faults)
        }
    }
}

/// Delivers one batch to the session the way a hostile transport's receiver
/// would: gaps trigger a full resync through the probe, stale reordered
/// duplicates are dropped, and anything else is a producer bug.
fn deliver(
    session: &mut AnalysisSession,
    probe: &mut FabricProbe,
    fabric: &Fabric,
    batch: EventBatch,
    resyncs: &mut usize,
) {
    match session.ingest(batch) {
        Ok(_) => {}
        Err(SessionError::EpochGap { resync }) => {
            *resyncs += 1;
            session
                .resync(resync.observed_epoch, probe.full_resync(fabric))
                .expect("a gap resync always moves the session forward");
        }
        Err(SessionError::EpochOutOfOrder { .. }) => {
            // A stale duplicate from the reorder buffer: the session already
            // holds everything up to its epoch, so the batch is droppable.
        }
        Err(err) => panic!("faithful probe events must apply: {err}"),
    }
}

/// Scores a streaming session once its timeline has settled: SCOUT from the
/// session's own report, SCORE on the identical augmented model, and the
/// ranked partial diagnosis for rank quality.
fn settle(
    session: &mut AnalysisSession,
    fabric: &Fabric,
) -> (ScoutReport, BTreeSet<ObjectId>, PartialDiagnosis) {
    let check = session.full_report().check.clone();
    let score = session.with_augmented_model(fabric, &check, |model| score_localize(model, 1.0));
    let ranked = session.partial_diagnosis();
    (session.full_report().clone(), score.objects(), ranked)
}

/// Assembles the outcome from a settled report.
#[allow(clippy::too_many_arguments)]
fn outcome_of(
    index: usize,
    seed: u64,
    kind: HostileKind,
    truth: BTreeSet<ObjectId>,
    report: &ScoutReport,
    score_objects: BTreeSet<ObjectId>,
    ranked: &PartialDiagnosis,
    resyncs: usize,
    disturbed_batches: usize,
) -> HostileOutcome {
    let hypothesis = report.hypothesis.objects();
    let attributed = if truth.is_empty() {
        hypothesis.is_empty()
    } else {
        !hypothesis.is_disjoint(&truth)
    };
    let diagnosis_rank = if truth.is_empty() {
        None
    } else {
        ranked.rank_of_any(&truth)
    };
    HostileOutcome {
        index,
        seed,
        kind,
        scout: Accuracy::of(&truth, &hypothesis),
        score: Accuracy::of(&truth, &score_objects),
        attributed,
        consistent: report.is_consistent(),
        gamma: report.gamma(),
        suspects: report.suspect_objects.clone(),
        hypothesis,
        resyncs,
        disturbed_batches,
        ranked_nonempty: !ranked.is_empty(),
        diagnosis_rank,
        truth,
    }
}

/// Injects 1..=`max_faults` object faults of a coin-flipped kind and returns
/// the ground truth.
fn inject(
    fabric: &mut Fabric,
    rng: &mut StdRng,
    seed: u64,
    max_faults: usize,
    forced: Option<ObjectFaultKind>,
) -> BTreeSet<ObjectId> {
    let count = rng.gen_range(1..=max_faults.max(1));
    let kind = forced.unwrap_or(if rng.gen_bool(0.5) {
        ObjectFaultKind::Full
    } else {
        ObjectFaultKind::Partial
    });
    let mut injector = FaultInjector::new(StdRng::seed_from_u64(injector_seed(seed)));
    injector
        .inject_object_faults_of(fabric, count, kind)
        .objects()
}

/// (a) Dropped and reordered batches from a lossy probe. The producer emits
/// faithful observations; the transport drops ~20% and holds ~20% for
/// reordering. A trailing heartbeat reveals any outstanding gap, so the
/// session always converges — through at least one full resync whenever a
/// batch was lost.
fn lossy_probe(
    engine: &ScoutEngine,
    base: &Fabric,
    index: usize,
    seed: u64,
    max_faults: usize,
) -> HostileOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fabric = base.clone();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);

    let mut producer_epoch = 0u64;
    let mut pending: Option<EventBatch> = None;
    let mut resyncs = 0usize;
    let mut disturbed = 0usize;
    let mut truth = BTreeSet::new();

    let rounds = rng.gen_range(4usize..=6);
    let fault_round = rng.gen_range(1..rounds.saturating_sub(1).max(2));
    for round in 0..rounds {
        // Drift: benign admin notes around one real fault injection.
        if round == fault_round {
            truth = inject(&mut fabric, &mut rng, seed, max_faults, None);
        } else {
            let t = fabric.now();
            let switches = fabric.universe().switch_ids();
            let &switch = switches.choose(&mut rng).expect("workloads have switches");
            fabric.record_admin_change(t, ObjectId::Switch(switch), "routine audit touch");
        }

        // Produce: the probe's cursors advance whether or not the batch
        // survives transit — exactly why a gap cannot be replayed.
        let Some(batch) = probe.observe_batch(&fabric, producer_epoch + 1) else {
            continue;
        };
        producer_epoch = batch.epoch;

        // Transport: drop, hold for reorder, or deliver (flushing any held
        // batch afterwards, now out of order).
        match rng.gen_range(0u32..10) {
            0 | 1 => {
                disturbed += 1;
            }
            2 | 3 => {
                if let Some(stale) = pending.replace(batch) {
                    deliver(&mut session, &mut probe, &fabric, stale, &mut resyncs);
                }
                disturbed += 1;
            }
            _ => {
                deliver(&mut session, &mut probe, &fabric, batch, &mut resyncs);
                if let Some(stale) = pending.take() {
                    deliver(&mut session, &mut probe, &fabric, stale, &mut resyncs);
                }
            }
        }
    }

    // Heartbeat: an empty but sequenced batch flushes any trailing loss into
    // a detectable gap, guaranteeing convergence before scoring.
    producer_epoch += 1;
    let heartbeat = EventBatch::new(producer_epoch, probe.observe(&fabric));
    deliver(&mut session, &mut probe, &fabric, heartbeat, &mut resyncs);

    let (report, score_objects, ranked) = settle(&mut session, &fabric);
    outcome_of(
        index,
        seed,
        HostileKind::LossyProbe,
        truth,
        &report,
        score_objects,
        &ranked,
        resyncs,
        disturbed,
    )
}

/// (b) A stale/torn `TcamSync` read taken mid-update: epoch 1 delivers a
/// page-walk of the victim switch that mixes post-fault and pre-fault pages,
/// epoch 2 settles with a clean read.
fn torn_sync(
    engine: &ScoutEngine,
    base: &Fabric,
    index: usize,
    seed: u64,
    max_faults: usize,
) -> HostileOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fabric = base.clone();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);

    // Capture every table before the fault: the torn read's stale pages.
    let stale_tables: BTreeMap<SwitchId, Vec<TcamRule>> = fabric
        .universe()
        .switch_ids()
        .iter()
        .map(|&s| (s, fabric.tcam_rules(s)))
        .collect();

    // 60% of scenarios carry a real fault; the rest are clean fabrics whose
    // torn read must not conjure one.
    let truth = if rng.gen_bool(0.6) {
        inject(&mut fabric, &mut rng, seed, max_faults, None)
    } else {
        BTreeSet::new()
    };

    // Tear the read of a switch the fault actually touched (or any switch on
    // a clean fabric — there the "torn" read degenerates to a clean one).
    let affected: Vec<SwitchId> = if truth.is_empty() {
        fabric.universe().switch_ids()
    } else {
        let universe = fabric.universe();
        truth
            .iter()
            .flat_map(|&o| universe.switches_for_object(o))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    let &victim = affected.choose(&mut rng).expect("a non-empty switch set");

    // Epoch 1: the probe's faithful events, except the victim's sync is torn.
    let live = fabric.tcam_rules(victim);
    let fresh = rng.gen_range(0..=live.len());
    let torn = FabricEvent::torn_tcam_sync(victim, &live, &stale_tables[&victim], fresh);
    let mut events = probe.observe(&fabric);
    if let Some(slot) = events
        .iter_mut()
        .find(|e| matches!(e, FabricEvent::TcamSync { switch, .. } if *switch == victim))
    {
        *slot = torn;
    } else {
        events.push(torn);
    }
    session
        .ingest(EventBatch::new(1, events))
        .expect("a torn read still validates");

    // Epoch 2: the poller re-reads the victim cleanly and the view settles.
    let mut events = probe.observe(&fabric);
    events.push(FabricEvent::TcamSync {
        switch: victim,
        rules: fabric.tcam_rules(victim),
    });
    session
        .ingest(EventBatch::new(2, events))
        .expect("the settling read applies");

    let (report, score_objects, ranked) = settle(&mut session, &fabric);
    outcome_of(
        index,
        seed,
        HostileKind::TornSync,
        truth,
        &report,
        score_objects,
        &ranked,
        0,
        1,
    )
}

/// (c) Flapping faults: several evict/repair cycles land inside a single
/// epoch's batch — raise and pre-cleared fault entries interleaved — before a
/// real break that stays.
fn flapping(
    engine: &ScoutEngine,
    base: &Fabric,
    index: usize,
    seed: u64,
    max_faults: usize,
) -> HostileOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fabric = base.clone();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);

    let switches = fabric.universe().switch_ids();
    let &flapper = switches.choose(&mut rng).expect("workloads have switches");
    for _ in 0..rng.gen_range(2usize..=4) {
        fabric.evict_tcam(flapper, rng.gen_range(1usize..=2), true);
        fabric.repair_switch(flapper);
    }
    // The break that does not heal.
    let truth = inject(&mut fabric, &mut rng, seed, max_faults, None);

    // One batch carries the whole flap history plus the break.
    session
        .ingest_observation(&mut probe, &fabric)
        .expect("faithful observations ingest cleanly");

    let (report, score_objects, ranked) = settle(&mut session, &fabric);
    outcome_of(
        index,
        seed,
        HostileKind::Flapping,
        truth,
        &report,
        score_objects,
        &ranked,
        0,
        1,
    )
}

/// (d) A correlated gray failure: partial object faults (SCORE-1.0's blind
/// axis) spread across the switches of the faulty objects, with only some of
/// the degraded links admitting anything to the fault log.
fn gray_failure(
    engine: &ScoutEngine,
    base_session: &mut AnalysisSession,
    base: &Fabric,
    index: usize,
    seed: u64,
    max_faults: usize,
) -> HostileOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fabric = base.clone();
    let truth = inject(
        &mut fabric,
        &mut rng,
        seed,
        max_faults,
        Some(ObjectFaultKind::Partial),
    );

    // Gray evidence: each implicated switch logs a channel degradation only
    // half the time — the rest stay silent.
    let implicated: BTreeSet<SwitchId> = {
        let universe = fabric.universe();
        truth
            .iter()
            .flat_map(|&o| universe.switches_for_object(o))
            .collect()
    };
    for switch in implicated {
        if rng.gen_bool(0.5) {
            let t = fabric.now();
            fabric.fault_log_mut().raise(
                t,
                Some(switch),
                FaultKind::ChannelDegraded,
                Severity::Warning,
                "gray link: elevated loss, below alarm threshold",
            );
        }
    }

    let (report, score) =
        base_session.analyze_clone_with(&fabric, |model| score_localize(model, 1.0));
    let ranked = engine.correlation().rank_partial(
        &report.hypothesis,
        &report.suspect_objects,
        fabric.universe(),
        fabric.change_log(),
        fabric.fault_log(),
    );
    outcome_of(
        index,
        seed,
        HostileKind::GrayFailure,
        truth,
        &report,
        score.objects(),
        &ranked,
        0,
        0,
    )
}

/// (e) Missing fault logs: the fault log is wiped after injection, so the
/// definitive correlation goes dark and the ranked partial diagnosis is the
/// only physical-level signal left.
fn missing_logs(
    engine: &ScoutEngine,
    base_session: &mut AnalysisSession,
    base: &Fabric,
    index: usize,
    seed: u64,
    max_faults: usize,
) -> HostileOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fabric = base.clone();
    let truth = inject(&mut fabric, &mut rng, seed, max_faults, None);
    *fabric.fault_log_mut() = FaultLog::new();

    let (report, score) =
        base_session.analyze_clone_with(&fabric, |model| score_localize(model, 1.0));
    let ranked = engine.correlation().rank_partial(
        &report.hypothesis,
        &report.suspect_objects,
        fabric.universe(),
        fabric.change_log(),
        fabric.fault_log(),
    );
    outcome_of(
        index,
        seed,
        HostileKind::MissingLogs,
        truth,
        &report,
        score.objects(),
        &ranked,
        0,
        0,
    )
}

/// The raw result of a hostile campaign.
#[derive(Debug, Clone)]
pub struct HostileRun {
    /// One outcome per scenario, in scenario order (classes are contiguous).
    pub outcomes: Vec<HostileOutcome>,
    /// Total wall-clock time (excluded from the deterministic report).
    pub elapsed: Duration,
}

impl HostileRun {
    /// Aggregates the outcomes into the deterministic campaign report.
    pub fn report(&self) -> HostileReport {
        HostileReport::of(&self.outcomes)
    }
}

/// Aggregated statistics of one hostile class.
#[derive(Debug, Clone, PartialEq)]
pub struct HostileClassStats {
    /// Number of scenarios of this class.
    pub scenarios: usize,
    /// Scenarios with a non-empty ground truth.
    pub faulty: usize,
    /// Faulty scenarios the pipeline flagged as inconsistent.
    pub detected: usize,
    /// Faulty scenarios whose hypothesis intersected the truth.
    pub attributed: usize,
    /// Full resyncs across the class's scenarios.
    pub resyncs: usize,
    /// Batches the hostile transport disturbed across the class.
    pub disturbed: usize,
    /// SCOUT precision over the faulty scenarios.
    pub precision: Summary,
    /// SCOUT recall over the faulty scenarios.
    pub recall: Summary,
    /// SCORE-1.0 recall over the faulty scenarios.
    pub score_recall: Summary,
    /// γ over the detected scenarios.
    pub gamma: Summary,
    /// Faulty scenarios whose ranked partial diagnosis was non-empty.
    pub ranked_nonempty: usize,
    /// Rank quality of the partial diagnosis over the faulty scenarios.
    pub rank: RankQuality,
}

/// The deterministic aggregate of one hostile campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct HostileReport {
    /// Total number of scenarios.
    pub scenarios: usize,
    /// Per-class breakdown (only classes that occurred).
    pub per_kind: BTreeMap<HostileKind, HostileClassStats>,
}

impl HostileReport {
    /// Aggregates a slice of outcomes.
    pub fn of(outcomes: &[HostileOutcome]) -> Self {
        let mut per_kind: BTreeMap<HostileKind, Vec<&HostileOutcome>> = BTreeMap::new();
        for outcome in outcomes {
            per_kind.entry(outcome.kind).or_default().push(outcome);
        }
        let stats = |items: &[&HostileOutcome]| -> HostileClassStats {
            let faulty: Vec<&&HostileOutcome> =
                items.iter().filter(|o| !o.truth.is_empty()).collect();
            let detected: Vec<&&&HostileOutcome> =
                faulty.iter().filter(|o| !o.consistent).collect();
            HostileClassStats {
                scenarios: items.len(),
                faulty: faulty.len(),
                detected: detected.len(),
                attributed: faulty.iter().filter(|o| o.attributed).count(),
                resyncs: items.iter().map(|o| o.resyncs).sum(),
                disturbed: items.iter().map(|o| o.disturbed_batches).sum(),
                precision: Summary::of(faulty.iter().map(|o| o.scout.precision)),
                recall: Summary::of(faulty.iter().map(|o| o.scout.recall)),
                score_recall: Summary::of(faulty.iter().map(|o| o.score.recall)),
                gamma: Summary::of(detected.iter().map(|o| o.gamma)),
                ranked_nonempty: faulty.iter().filter(|o| o.ranked_nonempty).count(),
                rank: RankQuality::of(faulty.iter().map(|o| o.diagnosis_rank)),
            }
        };
        HostileReport {
            scenarios: outcomes.len(),
            per_kind: per_kind
                .into_iter()
                .map(|(kind, items)| (kind, stats(&items)))
                .collect(),
        }
    }

    /// The stats of one class, if it occurred.
    pub fn class(&self, kind: HostileKind) -> Option<&HostileClassStats> {
        self.per_kind.get(&kind)
    }

    /// Renders the per-class breakdown as an aligned table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Hostile telemetry — SCOUT vs SCORE-1.0 per scenario class",
            &[
                "class", "runs", "faulty", "detected", "resyncs", "P(SCOUT)", "R(SCOUT)",
                "R(SCORE)", "mean γ", "top-3", "MRR",
            ],
        );
        for (kind, stats) in &self.per_kind {
            table.row([
                kind.to_string(),
                stats.scenarios.to_string(),
                stats.faulty.to_string(),
                stats.detected.to_string(),
                stats.resyncs.to_string(),
                fmt_mean(&stats.precision),
                fmt_mean(&stats.recall),
                fmt_mean(&stats.score_recall),
                fmt_mean(&stats.gamma),
                stats.rank.fmt_top3(),
                stats.rank.fmt_mrr(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_workload::TestbedSpec;

    fn small_campaign(seed: u64) -> HostileCampaign {
        HostileCampaign {
            max_faults: 2,
            concurrency: Concurrency::Sequential,
            ..HostileCampaign::new(WorkloadKind::Testbed(TestbedSpec::paper()), 6, seed)
        }
    }

    #[test]
    fn hostile_campaign_is_deterministic_across_thread_counts() {
        let sequential = small_campaign(42);
        let threaded = HostileCampaign {
            concurrency: Concurrency::Threads(4),
            ..small_campaign(42)
        };
        let a = sequential.run();
        let b = threaded.run();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.report(), b.report());
        let c = small_campaign(43).run();
        assert_ne!(a.outcomes, c.outcomes);
    }

    #[test]
    fn every_class_runs_its_share() {
        let run = small_campaign(7).run();
        let report = run.report();
        assert_eq!(report.scenarios, 30);
        assert_eq!(report.per_kind.len(), 5);
        for kind in HostileKind::ALL {
            assert_eq!(report.class(kind).unwrap().scenarios, 6, "{kind}");
        }
        // Outcomes are class-contiguous in index order.
        for (i, outcome) in run.outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
            assert_eq!(outcome.kind, HostileKind::ALL[i / 6]);
        }
    }

    #[test]
    fn lossy_probe_sessions_converge_to_the_live_fabric() {
        // Convergence is the contract the heartbeat guarantees: whatever the
        // transport dropped, the settled hypothesis equals a from-scratch
        // analysis — verified here through SCOUT == truth-facing scoring on
        // a fabric the outcome kept no handle to, so assert on aggregates.
        let run = small_campaign(11).run();
        let report = run.report();
        let lossy = report.class(HostileKind::LossyProbe).unwrap();
        assert!(lossy.faulty > 0, "injection must land in most scenarios");
        assert_eq!(
            lossy.detected, lossy.faulty,
            "a converged session sees every injected fault"
        );
        // The whole point of the class: losses occurred and were survived.
        assert!(lossy.disturbed > 0);
    }

    #[test]
    fn missing_logs_always_rank_something() {
        let run = small_campaign(5).run();
        let report = run.report();
        let missing = report.class(HostileKind::MissingLogs).unwrap();
        assert!(missing.faulty > 0);
        assert_eq!(
            missing.ranked_nonempty, missing.faulty,
            "wiped logs must still yield a ranked diagnosis"
        );
        assert!(missing.rank.queries() == missing.faulty);
    }

    #[test]
    fn hostile_table_renders_every_class_row() {
        let report = small_campaign(3).run().report();
        let text = report.table().to_string();
        for kind in HostileKind::ALL {
            assert!(text.contains(&kind.to_string()), "{kind} row missing");
        }
        assert_eq!(report.table().len(), 5);
    }

    #[test]
    fn class_seeds_are_disjoint_streams() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in HostileKind::ALL {
            for index in 0..50 {
                assert!(seen.insert(hostile_seed(42, kind, index)));
            }
        }
    }
}
