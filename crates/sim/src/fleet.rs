//! Fleet soak: many tenants through the **serving layer**, not the library.
//!
//! [`MultiTenantSoak`](crate::multi::MultiTenantSoak) proves the engine's
//! concurrency contract by driving [`AnalysisSession`]s directly.
//! [`FleetSoak`] raises the bar one layer: every batch now crosses the
//! `scout-server` front door — wire-encoded [`ServerRequest`]s through
//! [`ScoutServer::handle_bytes`], past admission control (token quotas,
//! bounded FIFO queues, shed-and-retry), into per-tenant sessions on **one**
//! shared [`ScoutEngine`]. The soak records per-request latencies, queue and
//! shed counts, and the full per-tenant delta stream, so the enforced root
//! suite `tests/server.rs` can pin the serving layer's headline contract:
//!
//! * front-door results are **bit-identical** to a direct single-threaded
//!   engine replay of the same recorded batches ([`FleetSoak::direct_replay`]);
//! * the thread count changes wall-clock time and nothing else;
//! * back-pressure (queue, shed, retry) never loses or reorders an accepted
//!   batch.
//!
//! Each worker thread owns its own [`ScoutServer`] node (sessions are
//! single-owner, exactly like a sharded deployment) while all nodes share the
//! engine — the same worker-strided layout as the multi-tenant soak.
//!
//! [`AnalysisSession`]: scout_core::AnalysisSession

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout_core::{EngineConfig, ReportDelta, ScoutEngine, ScoutReport};
use scout_fabric::wire::{from_bytes, to_bytes};
use scout_fabric::{EventBatch, Fabric, FabricProbe};
use scout_metrics::{fmt3, Table};
use scout_server::{
    AdmissionConfig, ScoutServer, ServerConfig, ServerRequest, ServerResponse, TenantId,
};
use scout_workload::random_policy_edit;

use crate::scenario::WorkloadKind;

/// A fleet soak configuration: M tenants through wire-encoded server requests
/// on T serving threads, one shared engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSoak {
    /// The per-tenant policy generator (tenant `i` generates from
    /// `base_seed + i`).
    pub workload: WorkloadKind,
    /// Number of tenants (each gets its own fabric, batch stream and server
    /// session).
    pub tenants: usize,
    /// Number of epochs in each tenant's recorded batch stream.
    pub epochs: usize,
    /// The base seed for both policy generation and fabric churn.
    pub base_seed: u64,
    /// Number of serving threads (clamped to the tenant count; at least 1).
    /// Each thread runs its own [`ScoutServer`] node.
    pub threads: usize,
    /// When `true` (the default) tenant `i` seeds from `base_seed + i`, so
    /// every tenant is a distinct workload. When `false` every tenant runs
    /// the **same** universe and batch stream — the uniform-load shape the
    /// fairness bench uses, so max/min tenant throughput measures the
    /// scheduler and not workload variance.
    pub distinct_seeds: bool,
    /// The admission policy every node applies in front of its tenants.
    pub admission: AdmissionConfig,
    /// The shared engine's configuration.
    pub engine: EngineConfig,
}

impl FleetSoak {
    /// A fleet soak with the default admission policy and engine
    /// configuration.
    pub fn new(workload: WorkloadKind, tenants: usize, epochs: usize, base_seed: u64) -> Self {
        Self {
            workload,
            tenants,
            epochs,
            base_seed,
            threads: tenants.max(1),
            distinct_seeds: true,
            admission: AdmissionConfig::default(),
            engine: EngineConfig::default(),
        }
    }

    /// The seed offset tenant `index` derives its universe and churn from.
    fn seed_index(&self, index: usize) -> u64 {
        if self.distinct_seeds {
            index as u64
        } else {
            0
        }
    }

    /// Tenant `index`'s policy universe.
    pub fn tenant_universe(&self, index: usize) -> scout_policy::PolicyUniverse {
        self.workload
            .generate(self.base_seed + self.seed_index(index))
    }

    /// Tenant `index`'s pristine deployed fabric — the one its server session
    /// is opened on, and the one [`FleetSoak::direct_replay`] starts from.
    pub fn tenant_fabric(&self, index: usize) -> Fabric {
        let mut fabric = Fabric::new(self.tenant_universe(index));
        fabric.deploy();
        fabric
    }

    /// Pre-records tenant `index`'s event-batch stream by churning its fabric
    /// once (evictions, rule drops, repairs, policy edits), so the server
    /// path and the direct replay consume byte-identical inputs.
    pub fn tenant_batches(&self, index: usize) -> Vec<EventBatch> {
        let mut fabric = self.tenant_fabric(index);
        let mut probe = FabricProbe::new(&fabric);
        let mut rng =
            StdRng::seed_from_u64(self.base_seed ^ 0xF1EE_7500 ^ (self.seed_index(index) << 17));
        (1..=self.epochs as u64)
            .map(|epoch| {
                let switch_ids = fabric.universe().switch_ids();
                let &switch = switch_ids.choose(&mut rng).unwrap();
                match rng.gen_range(0u32..5) {
                    0 => {
                        let port = rng.gen_range(0u16..7);
                        fabric
                            .remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port);
                    }
                    1 => {
                        fabric.evict_tcam(switch, rng.gen_range(1usize..3), true);
                    }
                    2 => {
                        fabric.repair_switch(switch);
                    }
                    3 => {
                        let universe = fabric.universe().clone();
                        if let Some(edit) = random_policy_edit(&universe, &mut rng) {
                            fabric.update_policy(edit.universe);
                        }
                    }
                    _ => {}
                }
                EventBatch::new(epoch, probe.observe(&fabric))
            })
            .collect()
    }

    /// Replays tenant `index`'s recorded batches on a **private** engine,
    /// single-threaded, no server in sight — the oracle the fleet run must
    /// match bit for bit.
    pub fn direct_replay(&self, index: usize) -> (Vec<ReportDelta>, ScoutReport) {
        let engine = ScoutEngine::from_config(self.engine)
            .expect("fleet engine config is degenerate (see EngineConfig::validate)");
        let fabric = self.tenant_fabric(index);
        let mut session = engine.open_session(&fabric);
        let deltas = self
            .tenant_batches(index)
            .into_iter()
            .map(|batch| {
                session
                    .ingest(batch)
                    .expect("recorded batches ingest cleanly")
            })
            .collect();
        (deltas, session.full_report().clone())
    }

    /// Runs the fleet: every tenant's batches through the wire API of a
    /// per-worker server node, one shared engine underneath.
    pub fn run(&self) -> FleetRun {
        let start = Instant::now();
        let engine = ScoutEngine::from_config(self.engine)
            .expect("fleet engine config is degenerate (see EngineConfig::validate)");
        let threads = self.threads.clamp(1, self.tenants.max(1));

        let mut outcomes: Vec<Option<TenantOutcome>> = (0..self.tenants).map(|_| None).collect();
        if threads <= 1 {
            let mut server =
                ScoutServer::new(engine.clone(), ServerConfig::in_memory(self.admission));
            for (tenant, slot) in outcomes.iter_mut().enumerate() {
                *slot = Some(self.serve_tenant(&mut server, tenant));
            }
        } else {
            std::thread::scope(|scope| {
                let engine = &engine;
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        scope.spawn(move || {
                            let mut server = ScoutServer::new(
                                engine.clone(),
                                ServerConfig::in_memory(self.admission),
                            );
                            (worker..self.tenants)
                                .step_by(threads)
                                .map(|tenant| (tenant, self.serve_tenant(&mut server, tenant)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (tenant, outcome) in handle.join().expect("serving thread panicked") {
                        outcomes[tenant] = Some(outcome);
                    }
                }
            });
        }

        FleetRun {
            outcomes: outcomes
                .into_iter()
                .map(|slot| slot.expect("every tenant index is covered"))
                .collect(),
            threads,
            elapsed: start.elapsed(),
        }
    }

    /// Drives one tenant's full lifecycle — open, ingest every recorded batch
    /// (riding out queue/shed back-pressure), drain, query, close — through
    /// the **byte**-level API of `server`.
    fn serve_tenant(&self, server: &mut ScoutServer, tenant: usize) -> TenantOutcome {
        let id = tenant as TenantId;
        let mut outcome = TenantOutcome::default();

        let universe = self.tenant_universe(tenant);
        match self.request(
            server,
            &mut outcome,
            ServerRequest::OpenSession {
                tenant: id,
                universe,
            },
        ) {
            ServerResponse::Opened { .. } => {}
            other => panic!("tenant {tenant}: open failed: {other:?}"),
        }

        for batch in self.tenant_batches(tenant) {
            let mut attempts = 0usize;
            loop {
                let request = ServerRequest::Ingest {
                    tenant: id,
                    batch: batch.clone(),
                };
                match self.request(server, &mut outcome, request) {
                    ServerResponse::Ingested { delta, .. } => {
                        outcome.deltas.push(delta);
                        break;
                    }
                    ServerResponse::Queued { .. } => {
                        // The controller owns the batch now; its delta arrives
                        // from a later tick, in FIFO order.
                        outcome.queued += 1;
                        break;
                    }
                    ServerResponse::Error(scout_server::ServerError::Shed { .. }) => {
                        // Refused outright: tick to refill tokens and drain the
                        // backlog, then resend the same batch.
                        outcome.shed += 1;
                        attempts += 1;
                        assert!(
                            attempts < 10_000,
                            "tenant {tenant}: admission config cannot make progress \
                             (refill_per_tick too small?)"
                        );
                        self.drain_tick(server, &mut outcome, id);
                    }
                    other => panic!("tenant {tenant}: unexpected ingest response: {other:?}"),
                }
            }
        }

        // Drain whatever is still parked before reading the final report.
        while server.queue_depth(id) > 0 {
            self.drain_tick(server, &mut outcome, id);
        }

        match self.request(server, &mut outcome, ServerRequest::Query { tenant: id }) {
            ServerResponse::Report { report, .. } => outcome.report = Some(report),
            other => panic!("tenant {tenant}: query failed: {other:?}"),
        }
        match self.request(
            server,
            &mut outcome,
            ServerRequest::CloseSession { tenant: id },
        ) {
            ServerResponse::Closed { .. } => {}
            other => panic!("tenant {tenant}: close failed: {other:?}"),
        }
        outcome
    }

    /// One timed round-trip through the wire funnel: encode, handle, decode.
    fn request(
        &self,
        server: &mut ScoutServer,
        outcome: &mut TenantOutcome,
        request: ServerRequest,
    ) -> ServerResponse {
        let bytes = to_bytes(&request);
        let clock = Instant::now();
        let reply = server.handle_bytes(&bytes);
        outcome.latencies_ns.push(clock.elapsed().as_nanos() as u64);
        from_bytes::<ServerResponse>(&reply).expect("server responses always decode")
    }

    /// One scheduling tick, folding any drained `Ingested` deltas for
    /// `tenant` into `outcome` in drain order.
    fn drain_tick(&self, server: &mut ScoutServer, outcome: &mut TenantOutcome, tenant: TenantId) {
        for response in server.tick() {
            match response {
                ServerResponse::Ingested { tenant: t, delta } if t == tenant => {
                    outcome.deltas.push(delta);
                }
                other => panic!("tick surfaced an unexpected response: {other:?}"),
            }
        }
    }
}

/// Everything one tenant's trip through the fleet produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantOutcome {
    /// One delta per recorded epoch, in epoch order — whether it came back
    /// inline (`Ingested`) or from a later drain tick.
    pub deltas: Vec<ReportDelta>,
    /// The final full report answered by `Query`.
    pub report: Option<ScoutReport>,
    /// Wall-clock nanoseconds of every wire round-trip this tenant issued.
    pub latencies_ns: Vec<u64>,
    /// Batches the admission controller parked (answered `Queued`).
    pub queued: usize,
    /// Ingest attempts refused with a typed `Shed` error (each was retried).
    pub shed: usize,
}

impl TenantOutcome {
    /// The deterministic analysis result: deltas plus final report. This —
    /// and only this — must be bit-identical to
    /// [`FleetSoak::direct_replay`]; latencies and back-pressure counts are
    /// scheduling artifacts.
    pub fn analysis(&self) -> (&[ReportDelta], Option<&ScoutReport>) {
        (&self.deltas, self.report.as_ref())
    }

    /// Latency percentile in nanoseconds (`p` in 0..=100) over this tenant's
    /// round-trips.
    pub fn latency_p(&self, p: f64) -> u64 {
        percentile(&self.latencies_ns, p)
    }

    /// Time this tenant spent being served, in seconds (sum of round-trips).
    pub fn busy_secs(&self) -> f64 {
        self.latencies_ns.iter().sum::<u64>() as f64 / 1e9
    }

    /// Accepted-batch throughput against this tenant's own serving time.
    pub fn throughput_per_sec(&self) -> f64 {
        self.deltas.len() as f64 / self.busy_secs().max(1e-12)
    }
}

/// Nearest-rank percentile over an unsorted sample (0 for an empty one).
fn percentile(sample: &[u64], p: f64) -> u64 {
    if sample.is_empty() {
        return 0;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The result of one fleet soak: per-tenant outcomes plus the aggregate
/// wall-clock cost of serving them with the configured thread count.
#[derive(Debug)]
pub struct FleetRun {
    /// One [`TenantOutcome`] per tenant, in tenant order.
    pub outcomes: Vec<TenantOutcome>,
    /// The number of serving threads actually used.
    pub threads: usize,
    /// Wall-clock time of the whole fleet (engine build included).
    pub elapsed: Duration,
}

impl FleetRun {
    /// Total accepted ingests across the fleet.
    pub fn total_ingests(&self) -> usize {
        self.outcomes.iter().map(|o| o.deltas.len()).sum()
    }

    /// Total batches parked by admission across the fleet.
    pub fn total_queued(&self) -> usize {
        self.outcomes.iter().map(|o| o.queued).sum()
    }

    /// Total typed sheds across the fleet.
    pub fn total_shed(&self) -> usize {
        self.outcomes.iter().map(|o| o.shed).sum()
    }

    /// Aggregate accepted-ingest throughput against wall-clock time.
    pub fn ingests_per_sec(&self) -> f64 {
        self.total_ingests() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Latency percentile in nanoseconds over **every** round-trip in the
    /// fleet.
    pub fn latency_p(&self, p: f64) -> u64 {
        let all: Vec<u64> = self
            .outcomes
            .iter()
            .flat_map(|o| o.latencies_ns.iter().copied())
            .collect();
        percentile(&all, p)
    }

    /// Max-over-min per-tenant throughput — the fleet's fairness number. A
    /// perfectly fair scheduler serves every tenant at the same rate
    /// (ratio 1.0); the serving-layer bench asserts this stays ≤ 2.0.
    pub fn fairness_ratio(&self) -> f64 {
        let rates: Vec<f64> = self
            .outcomes
            .iter()
            .map(TenantOutcome::throughput_per_sec)
            .collect();
        let max = rates.iter().copied().fold(f64::MIN, f64::max);
        let min = rates.iter().copied().fold(f64::MAX, f64::min);
        if rates.is_empty() || min <= 0.0 {
            return f64::INFINITY;
        }
        max / min
    }

    /// Renders the fleet summary as an aligned table.
    pub fn table(&self) -> Table {
        let mut table = Table::new("Fleet soak — serving layer", &["metric", "value"]);
        table.row(["tenants".into(), self.outcomes.len().to_string()]);
        table.row(["threads".into(), self.threads.to_string()]);
        table.row(["ingests".into(), self.total_ingests().to_string()]);
        table.row(["queued".into(), self.total_queued().to_string()]);
        table.row(["shed".into(), self.total_shed().to_string()]);
        table.row(["p50 latency".into(), format!("{} ns", self.latency_p(50.0))]);
        table.row(["p99 latency".into(), format!("{} ns", self.latency_p(99.0))]);
        table.row(["fairness max/min".into(), fmt3(self.fairness_ratio())]);
        table.row([
            "throughput".into(),
            format!("{} ingests/s", fmt3(self.ingests_per_sec())),
        ]);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_server::OverloadPolicy;
    use scout_workload::TestbedSpec;

    fn small_fleet(tenants: usize, threads: usize) -> FleetSoak {
        let spec = TestbedSpec {
            epgs: 10,
            contracts: 6,
            filters: 4,
            target_pairs: 14,
            switches: 3,
            tcam_capacity: 1024,
        };
        FleetSoak {
            threads,
            ..FleetSoak::new(WorkloadKind::Testbed(spec), tenants, 12, 29)
        }
    }

    #[test]
    fn fleet_results_match_direct_replay_at_any_thread_count() {
        let fleet = small_fleet(3, 3);
        let concurrent = fleet.run();
        let sequential = small_fleet(3, 1).run();
        assert_eq!(concurrent.threads, 3);
        assert_eq!(sequential.threads, 1);
        for tenant in 0..3 {
            let (deltas, report) = fleet.direct_replay(tenant);
            assert_eq!(
                concurrent.outcomes[tenant].analysis(),
                (&deltas[..], Some(&report)),
                "tenant {tenant}: the front door changed an analysis result"
            );
            assert_eq!(
                concurrent.outcomes[tenant].analysis(),
                sequential.outcomes[tenant].analysis(),
                "tenant {tenant}: thread count changed an analysis result"
            );
        }
        assert_eq!(concurrent.total_ingests(), 3 * 12);
        assert!(concurrent.ingests_per_sec() > 0.0);
        let table = concurrent.table().to_string();
        assert!(table.contains("fairness max/min"));
    }

    #[test]
    fn back_pressure_delays_but_never_loses_or_reorders_batches() {
        let mut fleet = small_fleet(2, 2);
        fleet.admission = AdmissionConfig {
            quota_tokens: 2,
            refill_per_tick: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::Queue,
        };
        let run = fleet.run();
        assert!(
            run.total_queued() + run.total_shed() > 0,
            "the tight quota must actually trigger back-pressure"
        );
        for tenant in 0..2 {
            let (deltas, report) = fleet.direct_replay(tenant);
            assert_eq!(run.outcomes[tenant].deltas, deltas);
            assert_eq!(run.outcomes[tenant].report.as_ref(), Some(&report));
            let epochs: Vec<u64> = run.outcomes[tenant]
                .deltas
                .iter()
                .map(|d| d.epoch)
                .collect();
            assert_eq!(epochs, (1..=12).collect::<Vec<u64>>(), "FIFO order held");
        }
    }

    #[test]
    fn uniform_fleet_serves_identical_tenants() {
        let mut fleet = small_fleet(2, 1);
        fleet.distinct_seeds = false;
        let run = fleet.run();
        assert_eq!(
            run.outcomes[0].analysis(),
            run.outcomes[1].analysis(),
            "uniform seeding must erase tenant-to-tenant workload variance"
        );
    }

    #[test]
    fn shed_policy_refuses_instead_of_parking() {
        let mut fleet = small_fleet(1, 1);
        fleet.admission = AdmissionConfig {
            quota_tokens: 1,
            refill_per_tick: 1,
            queue_capacity: 4,
            policy: OverloadPolicy::Shed,
        };
        let run = fleet.run();
        assert_eq!(run.total_queued(), 0, "Shed policy never queues");
        assert!(run.total_shed() > 0);
        let (deltas, _) = fleet.direct_replay(0);
        assert_eq!(run.outcomes[0].deltas, deltas, "retries landed every batch");
    }
}
