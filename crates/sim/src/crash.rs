//! Crash-injection soak: a churning fabric monitored through a *durable*
//! session that is repeatedly SIGKILL-simulated mid-commit and recovered.
//!
//! The [`soak::Timeline`](crate::soak::Timeline) proves the engine survives
//! hundreds of epochs; this soak proves the **store** survives the analyzer
//! dying at arbitrary abort points. A seeded [`CrashPlan`] arms a countdown
//! over the store's durable file operations (appends, fsyncs, renames, …);
//! when it fires, the in-flight operation is interrupted exactly as a kill
//! would leave it — torn appends and all — the poisoned session is dropped,
//! and [`DurableEngine::recover`] rebuilds a session from disk.
//!
//! After every recovery the soak asserts the store's whole contract:
//!
//! * the recovered epoch is at most the crash epoch (nothing invented);
//! * the recovered report is **bit-identical** to the uninterrupted
//!   reference session's report at that same epoch;
//! * after re-feeding the lost batches, the durable session again tracks
//!   the reference bit-for-bit at every subsequent epoch.
//!
//! Runs are deterministic per seed — the same [`CrashSoak`] yields the same
//! [`CrashSoakReport`], crash sites included — so the root `tests/store.rs`
//! suite pins this soak as a regression test.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

use scout_core::{ScoutEngine, ScoutReport};
use scout_fabric::{CorruptionKind, EventBatch, Fabric, FabricProbe};
use scout_store::test_dir::TestDir;
use scout_store::{CrashPlan, DurableEngine, DurableSession, StoreConfig, StoreError};
use scout_workload::{add_random_filter, random_policy_edit};

use crate::scenario::WorkloadKind;

/// A seeded kill-and-recover soak against one durable session.
#[derive(Debug, Clone)]
pub struct CrashSoak {
    /// Which policy workload to churn.
    pub workload: WorkloadKind,
    /// How many epochs of churn to drive.
    pub epochs: usize,
    /// How many crashes to inject before letting the run finish cleanly.
    pub crashes: usize,
    /// Master seed: workload, churn, abort points and tear offsets.
    pub seed: u64,
    /// Store tuning for the durable session (its `crash_plan` is overridden
    /// by the soak's own seeded plans).
    pub store: StoreConfig,
}

/// What a [`CrashSoak`] run observed. Deterministic per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSoakReport {
    /// Epochs of churn driven end to end.
    pub epochs: usize,
    /// Crashes injected (always the soak's `crashes` budget).
    pub crashes_injected: usize,
    /// Successful recoveries (one per crash, plus the final audit).
    pub recoveries: usize,
    /// Epochs that had to be re-fed because a crash lost them (staged but
    /// uncommitted, or torn mid-append).
    pub epochs_refed: usize,
    /// Batches replayed from the journal tail across all recoveries.
    pub replayed_batches: u64,
    /// Torn bytes truncated across all recoveries.
    pub torn_bytes_truncated: u64,
    /// Snapshot anchors written across all session lives.
    pub anchors_written: u64,
    /// Segments rolled across all session lives.
    pub segments_rolled: u64,
    /// Segments deleted by compaction across all session lives.
    pub segments_removed: u64,
    /// The session's final epoch (equals `epochs`).
    pub final_epoch: u64,
}

/// One epoch of soak-style churn — the same disturbance mix the enforced
/// checkpoint/session replays use.
fn disturb(fabric: &mut Fabric, rng: &mut StdRng) {
    let switch_ids = fabric.universe().switch_ids();
    let &switch = switch_ids.choose(rng).expect("workloads have switches");
    match rng.gen_range(0u32..8) {
        0 => {
            let port = rng.gen_range(0u16..7);
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port);
        }
        1 => {
            let kind = *[
                CorruptionKind::VrfBit,
                CorruptionKind::SrcEpgBit,
                CorruptionKind::ActionFlip,
            ]
            .choose(rng)
            .unwrap();
            fabric.corrupt_tcam(switch, rng.gen_range(0usize..8), kind);
        }
        2 => {
            fabric.evict_tcam(switch, rng.gen_range(1usize..3), rng.gen_bool(0.5));
        }
        3 => {
            fabric.disconnect_switch(switch);
        }
        4 => {
            fabric.crash_agent(switch);
        }
        5 => {
            fabric.repair_switch(switch);
        }
        6 => {
            let universe = fabric.universe().clone();
            if let Some(edit) = add_random_filter(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
        _ => {
            let universe = fabric.universe().clone();
            if let Some(edit) = random_policy_edit(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
    }
}

impl CrashSoak {
    /// A soak with the given churn length, crash budget and seed.
    pub fn new(workload: WorkloadKind, epochs: usize, crashes: usize, seed: u64) -> Self {
        CrashSoak {
            workload,
            epochs,
            crashes,
            seed,
            store: StoreConfig {
                // Small knobs so a short soak still crosses many segment
                // rolls and anchor/compaction cycles.
                snapshot_every: 5,
                segment_max_records: 4,
                ..StoreConfig::default()
            },
        }
    }

    /// Seeds the next life's crash plan: enough operations to always make
    /// commit progress (open/recover plus a few epochs), little enough to
    /// crash often.
    fn next_plan(&self, rng: &mut StdRng) -> CrashPlan {
        CrashPlan {
            abort_after_ops: rng.gen_range(20u64..60),
            partial_seed: rng.next_u64(),
        }
    }

    /// Drives the soak against `engine`.
    ///
    /// # Panics
    ///
    /// Panics if any recovery violates the store contract (recovered state
    /// not bit-identical to the uninterrupted reference, unexpected store
    /// error, or a final verification failure) — this soak *is* the
    /// regression harness.
    pub fn run(&self, engine: &ScoutEngine) -> CrashSoakReport {
        assert!(self.epochs > 0, "a soak needs at least one epoch");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut fabric = Fabric::new(self.workload.generate(self.seed));
        fabric.deploy();

        let dir = TestDir::new("crash-soak");
        let mut reference = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);
        let mut durable = {
            let config = StoreConfig {
                crash_plan: Some(self.next_plan(&mut rng)),
                ..self.store
            };
            engine
                .open_durable(&fabric, dir.path(), config)
                .expect("the first plan outlives open_durable")
        };

        // Every batch and every reference report, for post-crash re-feeds
        // and bit-identity checks at recovered (past) epochs.
        let mut batches: Vec<EventBatch> = Vec::with_capacity(self.epochs);
        let mut reports: Vec<ScoutReport> = vec![reference.full_report().clone()];

        let mut report = CrashSoakReport {
            epochs: self.epochs,
            crashes_injected: 0,
            recoveries: 0,
            epochs_refed: 0,
            replayed_batches: 0,
            torn_bytes_truncated: 0,
            anchors_written: 0,
            segments_rolled: 0,
            segments_removed: 0,
            final_epoch: 0,
        };

        let absorb = |report: &mut CrashSoakReport, durable: &DurableSession| {
            let stats = durable.store_stats();
            report.replayed_batches += stats.replayed_on_recover;
            report.torn_bytes_truncated += stats.torn_bytes_truncated;
            report.anchors_written += stats.anchors_written;
            report.segments_rolled += stats.segments_rolled;
            report.segments_removed += stats.segments_removed;
        };

        for epoch in 1..=self.epochs as u64 {
            disturb(&mut fabric, &mut rng);
            let batch = EventBatch::new(epoch, probe.observe(&fabric));
            batches.push(batch.clone());
            reference
                .ingest(batch)
                .expect("faithful observations ingest cleanly");
            reports.push(reference.full_report().clone());

            // Feed the durable session everything it is missing (usually
            // just this epoch; more after a crash rewound it).
            loop {
                let next = durable.next_epoch();
                if next > epoch {
                    break;
                }
                if next < epoch {
                    report.epochs_refed += 1;
                }
                match durable.ingest(batches[next as usize - 1].clone()) {
                    Ok(_) => {
                        assert_eq!(
                            durable.full_report(),
                            &reports[durable.epoch() as usize],
                            "epoch {}: durable session diverged from the reference",
                            durable.epoch()
                        );
                    }
                    Err(StoreError::InjectedCrash) => {
                        report.crashes_injected += 1;
                        assert!(durable.is_poisoned(), "a crash must poison the store");
                        absorb(&mut report, &durable);
                        drop(durable);

                        let plan = if report.crashes_injected < self.crashes {
                            Some(self.next_plan(&mut rng))
                        } else {
                            None // budget spent: let the run finish cleanly
                        };
                        let config = StoreConfig {
                            crash_plan: plan,
                            ..self.store
                        };
                        durable = engine
                            .recover(dir.path(), config)
                            .expect("a crashed store recovers");
                        report.recoveries += 1;
                        let recovered = durable.epoch();
                        // `<=`, not `<`: a process kill does not lose bytes
                        // already written to the journal, so if the fatal op
                        // was the *sync* after a completed append, recovery
                        // legitimately lands on the in-flight epoch itself.
                        assert!(
                            recovered <= next,
                            "recovery at epoch {recovered} invented epochs (crash was at {next})"
                        );
                        assert_eq!(
                            durable.full_report(),
                            &reports[recovered as usize],
                            "recovered session at epoch {recovered} is not bit-identical \
                             to the uninterrupted reference"
                        );
                    }
                    Err(other) => panic!("unexpected store error mid-soak: {other}"),
                }
            }
        }

        assert_eq!(durable.epoch(), self.epochs as u64);
        assert_eq!(
            durable.full_report(),
            reference.full_report(),
            "final durable state diverged from the reference"
        );
        absorb(&mut report, &durable);
        drop(durable);

        // Final audit: the store on disk still verifies byte-for-byte and
        // recovers to the exact final state.
        let summary = scout_store::verify_dir(dir.path()).expect("final store verifies");
        assert_eq!(summary.last_epoch, self.epochs as u64);
        let audited = engine
            .recover(dir.path(), StoreConfig::default())
            .expect("final store recovers");
        report.recoveries += 1;
        assert_eq!(audited.full_report(), reference.full_report());
        report.final_epoch = audited.epoch();

        assert_eq!(
            report.crashes_injected, self.crashes,
            "the crash budget was not exhausted — raise epochs or lower abort windows"
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_workload::TestbedSpec;

    fn small() -> CrashSoak {
        CrashSoak::new(
            WorkloadKind::Testbed(TestbedSpec {
                epgs: 10,
                contracts: 6,
                filters: 3,
                target_pairs: 14,
                switches: 3,
                tcam_capacity: 512,
            }),
            48,
            3,
            0xC4A5,
        )
    }

    #[test]
    fn crash_soak_recovers_bit_identically() {
        let engine = ScoutEngine::new();
        let report = small().run(&engine);
        assert_eq!(report.crashes_injected, 3);
        assert_eq!(report.final_epoch, 48);
        assert!(report.recoveries >= 4);
    }

    #[test]
    fn crash_soak_is_deterministic_per_seed() {
        let engine = ScoutEngine::new();
        let a = small().run(&engine);
        let b = small().run(&engine);
        assert_eq!(a, b);
        let mut other = small();
        other.seed ^= 1;
        // A different seed moves the crash sites; the run still succeeds.
        let c = other.run(&engine);
        assert_eq!(c.crashes_injected, 3);
    }
}
