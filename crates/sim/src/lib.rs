//! # scout-sim
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! The randomized fault-campaign engine of the SCOUT reproduction
//! (ICDCS 2018).
//!
//! The paper's headline claims are statistical — precision and recall near 1
//! on full-object faults, better recall than SCORE on partial faults, a small
//! suspect-set reduction ratio γ — so exercising the pipeline on a handful of
//! hand-written scenarios is not enough. This crate drives *campaigns*:
//! batches of seeded, randomized fault scenarios executed end to end (sample
//! a workload, deploy, disturb, localize, correlate, score against ground
//! truth), in parallel, with the per-seed determinism needed to turn the
//! paper's accuracy tables into enforceable regression tests.
//!
//! Scenarios draw from every disturbance class the repo models
//! ([`ScenarioKind`]): full and partial object faults, physical switch faults
//! (TCAM corruption, silent eviction), switch churn racing a policy rollout,
//! and concurrent policy updates surrounding a fault. Each scenario clones
//! the campaign's reference fabric and is analyzed against a per-worker
//! [`AnalysisSession`](scout_core::AnalysisSession), so a campaign step costs
//! time proportional to the disturbance — the session's equivalence check
//! covers the clean switches and its pristine risk model is re-augmented (and
//! rolled back) instead of rebuilt.
//!
//! Campaigns are one-shot; the [`soak`] module adds the *continuous* half of
//! the paper's pitch: a seeded [`Timeline`] keeps one fabric alive for
//! hundreds of epochs of overlapping faults, online repairs and concurrent
//! policy edits, monitored through a long-lived
//! [`AnalysisSession`](scout_core::AnalysisSession) fed typed event deltas
//! and checked at every epoch against a from-scratch differential oracle.
//!
//! Both engines route all analysis through the
//! [`ScoutEngine`](scout_core::ScoutEngine) facade; their knobs live in one
//! [`EngineConfig`](scout_core::EngineConfig) carried by [`Campaign::engine`]
//! and [`Timeline::engine`].
//!
//! # Example
//!
//! ```
//! use scout_sim::{Campaign, Concurrency, WorkloadKind};
//! use scout_workload::TestbedSpec;
//!
//! let campaign = Campaign {
//!     scenarios: 8,
//!     concurrency: Concurrency::Sequential,
//!     ..Campaign::new(WorkloadKind::Testbed(TestbedSpec::paper()), 8, 42)
//! };
//! let run = campaign.run();
//! let report = run.report();
//! assert_eq!(report.scenarios, 8);
//! // Same seed, same aggregate — campaigns are deterministic.
//! assert_eq!(campaign.run().report(), report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod crash;
pub mod fleet;
pub mod hostile;
pub mod multi;
pub mod scenario;
pub mod soak;

pub use campaign::{
    scenario_seed, AnalysisMode, Campaign, CampaignReport, CampaignRun, Concurrency, KindStats,
};
pub use crash::{CrashSoak, CrashSoakReport};
pub use fleet::{FleetRun, FleetSoak, TenantOutcome};
pub use hostile::{
    hostile_seed, HostileCampaign, HostileClassStats, HostileKind, HostileOutcome, HostileReport,
    HostileRun,
};
pub use multi::{MultiTenantRun, MultiTenantSoak};
pub use scenario::{run_scenario, ScenarioKind, ScenarioMix, ScenarioOutcome, WorkloadKind};
pub use soak::{
    EpochRecord, FaultRecord, SoakFaultKind, SoakOutcome, SoakReport, SoakRun, Timeline,
};

// The oracle cadence is engine configuration now; re-exported here because
// soak drivers are its main consumers.
pub use scout_core::OracleCadence;
