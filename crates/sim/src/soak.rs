//! The long-horizon soak engine: multi-epoch fault timelines with online
//! repair and a differential oracle.
//!
//! The paper pitches SCOUT as a *continuous* monitor that "continuously
//! compares the logical rules against the deployed TCAM rules", yet a
//! [`Campaign`](crate::Campaign) exercises the pipeline one disturbance at a
//! time: clone, disturb, analyze, discard. A [`Timeline`] instead keeps **one
//! fabric alive for hundreds of epochs** and, at every tick, possibly injects
//! a new fault (overlapping with still-active ones), repairs a previously
//! injected fault through the repair APIs of `scout-faults`/`scout-fabric`,
//! and lands a concurrent policy edit — then a [`FabricProbe`] diffs the
//! fabric into typed events and the monitor ingests them through a
//! long-lived [`AnalysisSession`](scout_core::AnalysisSession).
//!
//! Correctness of the delta-driven machinery over the whole lifecycle is
//! enforced by a **differential oracle**: at every epoch (or a stride of
//! epochs for long runs) a from-scratch
//! [`ScoutEngine::analyze`](scout_core::ScoutEngine::analyze) is run on the
//! same fabric state and the two [`ScoutReport`](scout_core::ScoutReport)s
//! must be bit-identical. Ground truth evolves with the timeline — each fault
//! owns the exact logical rules it knocked out, rules are re-claimed or
//! released as repairs and policy edits land, and a fault is *healed* once
//! its footprint is gone — which yields lifecycle metrics no single-shot
//! campaign can produce: detection latency in epochs, repair clearances, and
//! per-epoch missing-rule/cost time series.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout_core::{EngineConfig, ScoutEngine, SessionStats};
use scout_fabric::{Fabric, FabricProbe};
use scout_faults::{FaultInjector, ObjectFaultKind};
use scout_metrics::{fmt3, fmt_mean, Cdf, Table, TimeSeries};
use scout_policy::{LogicalRule, ObjectId, SwitchId, TcamRule};
use scout_workload::random_policy_edit;

use crate::scenario::WorkloadKind;

/// The disturbance classes a soak timeline can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SoakFaultKind {
    /// A full object fault (every rule of one policy object lost).
    ObjectFull,
    /// A partial object fault (a strict subset of an object's rules lost).
    ObjectPartial,
    /// Silent TCAM bit corruption on one switch.
    Corruption,
    /// Silent eviction of the oldest TCAM entries on one switch.
    Eviction,
    /// A control-channel flap: the switch misses everything pushed while it
    /// is down (including concurrent policy edits).
    ChannelFlap,
    /// An agent crash: the switch ignores everything pushed until restarted.
    AgentCrash,
}

impl SoakFaultKind {
    /// All kinds, in report order.
    pub const ALL: [SoakFaultKind; 6] = [
        SoakFaultKind::ObjectFull,
        SoakFaultKind::ObjectPartial,
        SoakFaultKind::Corruption,
        SoakFaultKind::Eviction,
        SoakFaultKind::ChannelFlap,
        SoakFaultKind::AgentCrash,
    ];
}

impl std::fmt::Display for SoakFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SoakFaultKind::ObjectFull => "object-full",
            SoakFaultKind::ObjectPartial => "object-partial",
            SoakFaultKind::Corruption => "corruption",
            SoakFaultKind::Eviction => "eviction",
            SoakFaultKind::ChannelFlap => "channel-flap",
            SoakFaultKind::AgentCrash => "agent-crash",
        };
        f.write_str(name)
    }
}

/// The lifecycle record of one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Injection order (index into [`SoakOutcome::faults`]).
    pub id: usize,
    /// The disturbance class.
    pub kind: SoakFaultKind,
    /// The ground-truth objects of the fault: the faulted object, the faulted
    /// switch, and/or the provenance objects of the rules it knocked out.
    /// Grows if a channel-flap or crashed switch misses later policy pushes.
    pub objects: BTreeSet<ObjectId>,
    /// The epoch the fault was injected.
    pub injected_epoch: usize,
    /// Rules the fault knocked out at injection time.
    pub initial_footprint: usize,
    /// First epoch at which the monitor's hypothesis intersected the fault's
    /// objects while the fault was visible, if any.
    pub detected_epoch: Option<usize>,
    /// The epoch a repair action was first applied to the fault, if any.
    pub repaired_epoch: Option<usize>,
    /// The epoch the fault's footprint vanished (own repair, a switch-level
    /// repair of another fault, or a policy edit retiring its rules).
    pub healed_epoch: Option<usize>,
    /// Number of repair actions applied to the fault (a repair through a dead
    /// control plane can fail and be retried at a later epoch).
    pub repair_attempts: usize,
}

impl FaultRecord {
    /// Detection latency in epochs, if the fault was detected.
    pub fn detection_latency(&self) -> Option<usize> {
        self.detected_epoch.map(|d| d - self.injected_epoch)
    }
}

/// How an active fault is repaired.
#[derive(Debug, Clone)]
enum RepairAction {
    /// Re-push exactly the logical rules the fault removed.
    Reinstall(Vec<LogicalRule>),
    /// Fully restore the switch (reconnect, restart, de-garbage, re-sync).
    RestoreSwitch(SwitchId),
}

/// A currently-active fault: its public record plus the engine's bookkeeping.
#[derive(Debug, Clone)]
struct ActiveFault {
    id: usize,
    repair: RepairAction,
    /// The logical rules this fault is currently responsible for keeping out
    /// of the TCAM. Reconciled against the fabric every epoch: rules restored
    /// by any repair, or retired by a policy edit, are released.
    outstanding: BTreeSet<LogicalRule>,
    /// Rules that were already missing on this fault's switch when the fault
    /// was injected (control-plane faults only). They predate the fault, so
    /// the orphan-claiming step must never attribute them to it — the ground
    /// truth stays rule-exact.
    excluded: BTreeSet<LogicalRule>,
}

/// What happened at one epoch of the timeline, plus what the monitor saw.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The epoch index.
    pub epoch: usize,
    /// Ids of faults injected this epoch.
    pub injected: Vec<usize>,
    /// Ids of faults a repair action was applied to this epoch.
    pub repaired: Vec<usize>,
    /// Ids of faults whose footprint vanished this epoch.
    pub healed: Vec<usize>,
    /// `true` if a concurrent policy edit landed this epoch.
    pub policy_edit: bool,
    /// Active faults after this epoch's actions.
    pub active_faults: usize,
    /// Ground truth: objects of every fault still visible this epoch.
    pub truth: BTreeSet<ObjectId>,
    /// Missing rules with no active fault to own them (e.g. installs dropped
    /// by a TCAM overflow); they are excluded from `truth`.
    pub unattributed_missing: usize,
    /// Missing rules reported by the monitor.
    pub missing_rules: usize,
    /// Failed observations reported by the monitor.
    pub observations: usize,
    /// Size of the pre-localization suspect set.
    pub suspects: usize,
    /// The monitor's hypothesis.
    pub hypothesis: BTreeSet<ObjectId>,
    /// `true` if the monitor saw a consistent network.
    pub consistent: bool,
    /// `true` if the hypothesis intersected a non-empty truth, or both were
    /// empty.
    pub attributed: bool,
    /// `true` if the differential oracle ran this epoch.
    pub oracle_checked: bool,
    /// Whether the from-scratch report was bit-identical to the incremental
    /// one (`None` when the oracle did not run).
    pub oracle_agrees: Option<bool>,
    /// Repair-driven heals made visible: faults healed this epoch that had a
    /// repair applied, were localized in the previous epoch's hypothesis and
    /// are gone from this epoch's. Faults retired by a policy edit alone are
    /// excluded — this counter measures the repair machinery, nothing else.
    pub repair_clearances: usize,
}

/// The deterministic product of a soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOutcome {
    /// One record per epoch, in epoch order.
    pub epochs: Vec<EpochRecord>,
    /// One record per injected fault, in injection order.
    pub faults: Vec<FaultRecord>,
}

impl SoakOutcome {
    /// Epochs where the differential oracle disagreed with the monitor.
    pub fn oracle_disagreements(&self) -> Vec<usize> {
        self.epochs
            .iter()
            .filter(|e| e.oracle_agrees == Some(false))
            .map(|e| e.epoch)
            .collect()
    }

    /// Aggregates the run into the deterministic lifecycle report.
    pub fn report(&self) -> SoakReport {
        let detected: Vec<&FaultRecord> = self
            .faults
            .iter()
            .filter(|f| f.detected_epoch.is_some())
            .collect();
        SoakReport {
            epochs: self.epochs.len(),
            injections: self.faults.len(),
            detected_faults: detected.len(),
            healed_faults: self
                .faults
                .iter()
                .filter(|f| f.healed_epoch.is_some())
                .count(),
            repair_attempts: self.faults.iter().map(|f| f.repair_attempts).sum(),
            repair_clearances: self.epochs.iter().map(|e| e.repair_clearances).sum(),
            policy_edits: self.epochs.iter().filter(|e| e.policy_edit).count(),
            overlap_epochs: self.epochs.iter().filter(|e| e.active_faults >= 2).count(),
            faulty_epochs: self.epochs.iter().filter(|e| !e.truth.is_empty()).count(),
            attributed_epochs: self
                .epochs
                .iter()
                .filter(|e| !e.truth.is_empty() && e.attributed)
                .count(),
            consistent_epochs: self.epochs.iter().filter(|e| e.consistent).count(),
            oracle_epochs: self.epochs.iter().filter(|e| e.oracle_checked).count(),
            oracle_disagreements: self.oracle_disagreements().len(),
            detection_latency: Cdf::of(
                detected
                    .iter()
                    .filter_map(|f| f.detection_latency())
                    .map(|l| l as f64),
            ),
            missing_rules: TimeSeries::of(
                "missing rules",
                self.epochs.iter().map(|e| e.missing_rules as f64),
            ),
            active_faults: TimeSeries::of(
                "active faults",
                self.epochs.iter().map(|e| e.active_faults as f64),
            ),
            hypothesis_size: TimeSeries::of(
                "hypothesis size",
                self.epochs.iter().map(|e| e.hypothesis.len() as f64),
            ),
        }
    }
}

/// The aggregate lifecycle metrics of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Number of epochs run.
    pub epochs: usize,
    /// Faults injected over the whole timeline.
    pub injections: usize,
    /// Faults whose objects were localized while active.
    pub detected_faults: usize,
    /// Faults whose footprint vanished before the run ended.
    pub healed_faults: usize,
    /// Repair actions applied (including failed attempts).
    pub repair_attempts: usize,
    /// Healed faults observed to leave the hypothesis (see
    /// [`EpochRecord::repair_clearances`]).
    pub repair_clearances: usize,
    /// Concurrent policy edits that landed.
    pub policy_edits: usize,
    /// Epochs with two or more simultaneously active faults.
    pub overlap_epochs: usize,
    /// Epochs with a non-empty ground truth.
    pub faulty_epochs: usize,
    /// Faulty epochs whose hypothesis intersected the truth.
    pub attributed_epochs: usize,
    /// Epochs the monitor reported a consistent network.
    pub consistent_epochs: usize,
    /// Epochs the differential oracle ran.
    pub oracle_epochs: usize,
    /// Oracle runs that disagreed with the incremental monitor (must be 0).
    pub oracle_disagreements: usize,
    /// Distribution of detection latency over detected faults, in epochs.
    pub detection_latency: Cdf,
    /// Missing rules seen by the monitor, per epoch.
    pub missing_rules: TimeSeries,
    /// Active faults after each epoch's actions.
    pub active_faults: TimeSeries,
    /// Hypothesis size per epoch.
    pub hypothesis_size: TimeSeries,
}

impl SoakReport {
    /// Renders the headline lifecycle counters as an aligned table.
    pub fn table(&self) -> Table {
        let mut table = Table::new("Soak — fault lifecycle", &["metric", "value"]);
        table.row(["epochs".to_string(), self.epochs.to_string()]);
        table.row(["faults injected".to_string(), self.injections.to_string()]);
        table.row([
            "faults detected".to_string(),
            self.detected_faults.to_string(),
        ]);
        table.row(["faults healed".to_string(), self.healed_faults.to_string()]);
        table.row([
            "repair attempts".to_string(),
            self.repair_attempts.to_string(),
        ]);
        table.row([
            "repair clearances".to_string(),
            self.repair_clearances.to_string(),
        ]);
        table.row(["policy edits".to_string(), self.policy_edits.to_string()]);
        table.row([
            "overlapping-fault epochs".to_string(),
            self.overlap_epochs.to_string(),
        ]);
        table.row([
            "faulty epochs attributed".to_string(),
            format!("{}/{}", self.attributed_epochs, self.faulty_epochs),
        ]);
        let latency = if self.detection_latency.is_empty() {
            "-".to_string()
        } else {
            format!(
                "p50 {} / p95 {} epochs",
                fmt3(self.detection_latency.quantile(0.5)),
                fmt3(self.detection_latency.quantile(0.95)),
            )
        };
        table.row(["detection latency".to_string(), latency]);
        table.row([
            "oracle".to_string(),
            format!(
                "{} checks, {} disagreements",
                self.oracle_epochs, self.oracle_disagreements
            ),
        ]);
        table
    }

    /// Renders the per-epoch series as sparklines, at most `width` chars wide.
    pub fn timeline_table(&self, width: usize) -> Table {
        let mut table = Table::new("Soak — timeline", &["series", "mean", "max", "per-epoch"]);
        for series in [
            &self.missing_rules,
            &self.active_faults,
            &self.hypothesis_size,
        ] {
            let summary = series.summary();
            let max = if summary.is_empty() {
                "-".to_string()
            } else {
                fmt3(summary.max)
            };
            table.row([
                series.name().to_string(),
                fmt_mean(&summary),
                max,
                series.sparkline(width),
            ]);
        }
        table
    }
}

/// The raw result of a soak run: the deterministic outcome plus wall-clock
/// cost measurements (which vary run to run and are kept separate so outcome
/// equality remains meaningful).
#[derive(Debug, Clone)]
pub struct SoakRun {
    /// The deterministic per-epoch and per-fault records.
    pub outcome: SoakOutcome,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Nanoseconds spent monitoring each epoch incrementally (probing the
    /// fabric into events plus the session ingest).
    pub incremental_cost: TimeSeries,
    /// Nanoseconds spent in the from-scratch oracle analysis, one sample per
    /// oracle epoch (empty under
    /// [`OracleCadence::Never`](scout_core::OracleCadence::Never)).
    pub scratch_cost: TimeSeries,
    /// The monitor session's own counters and per-ingest latency series.
    pub session_stats: SessionStats,
}

/// A seeded multi-epoch soak timeline.
///
/// # Example
///
/// ```
/// use scout_sim::{Timeline, WorkloadKind};
/// use scout_workload::TestbedSpec;
///
/// let timeline = Timeline::new(WorkloadKind::Testbed(TestbedSpec::paper()), 20, 7);
/// let run = timeline.run();
/// assert_eq!(run.outcome.epochs.len(), 20);
/// // The differential oracle agreed at every epoch…
/// assert!(run.outcome.oracle_disagreements().is_empty());
/// // …and the same seed reproduces the same timeline.
/// assert_eq!(timeline.run().outcome, run.outcome);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timeline {
    /// The policy generator for the monitored fabric.
    pub workload: WorkloadKind,
    /// Number of epochs to run.
    pub epochs: usize,
    /// The timeline seed; every injection, repair and edit decision derives
    /// from it.
    pub seed: u64,
    /// Probability of injecting a new fault at an epoch (subject to
    /// [`Timeline::max_active`]).
    pub inject_rate: f64,
    /// Probability of applying a repair to one active fault at an epoch.
    pub repair_rate: f64,
    /// Probability of a concurrent policy edit at an epoch.
    pub edit_rate: f64,
    /// Upper bound on simultaneously active faults.
    pub max_active: usize,
    /// The analysis-engine configuration shared by the monitor session and
    /// the differential oracle — including the oracle cadence.
    pub engine: EngineConfig,
}

impl Timeline {
    /// A timeline with the default rates: faults arrive slightly faster than
    /// they are repaired (so overlap happens), a fifth of the epochs carry a
    /// concurrent policy edit, and the oracle checks every epoch.
    pub fn new(workload: WorkloadKind, epochs: usize, seed: u64) -> Self {
        Self {
            workload,
            epochs,
            seed,
            inject_rate: 0.5,
            repair_rate: 0.35,
            edit_rate: 0.2,
            max_active: 4,
            engine: EngineConfig::default(),
        }
    }

    /// Runs the timeline against a private engine built from
    /// [`Timeline::engine`].
    pub fn run(&self) -> SoakRun {
        let engine = ScoutEngine::from_config(self.engine)
            .expect("timeline engine config is degenerate (see EngineConfig::validate)");
        self.run_with_engine(&engine)
    }

    /// Runs the timeline against a caller-provided — possibly shared —
    /// engine.
    ///
    /// This is the multi-tenant path: a `ScoutEngine` is `Send + Sync`, so
    /// many timelines can run concurrently against one engine, each opening
    /// its own monitor session (see [`MultiTenantSoak`](crate::MultiTenantSoak)).
    /// The engine's configuration governs the analysis and the oracle
    /// cadence; [`Timeline::engine`] is consulted only by [`Timeline::run`].
    /// For a given seed the outcome is bit-identical whether the engine is
    /// private or shared, and regardless of what other tenants it serves.
    pub fn run_with_engine(&self, engine: &ScoutEngine) -> SoakRun {
        let start = Instant::now();
        let oracle = engine.config().oracle;
        let mut fabric = Fabric::new(self.workload.generate(self.seed));
        fabric.deploy();

        // The monitor is a long-lived session fed typed event deltas by a
        // probe; the oracle is the engine's stateless one-shot path (which
        // never touches the session's caches).
        let mut monitor = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        let mut rng = StdRng::seed_from_u64(soak_seed(self.seed));
        let mut injector = FaultInjector::new(StdRng::seed_from_u64(soak_seed(self.seed ^ 0x5357)));

        let mut active: Vec<ActiveFault> = Vec::new();
        let mut faults: Vec<FaultRecord> = Vec::new();
        let mut epochs: Vec<EpochRecord> = Vec::with_capacity(self.epochs);
        let mut prev_hypothesis: BTreeSet<ObjectId> = BTreeSet::new();
        let mut incremental_cost = TimeSeries::new("incremental epoch analysis (ns)");
        let mut scratch_cost = TimeSeries::new("from-scratch oracle analysis (ns)");

        for epoch in 0..self.epochs {
            let mut record = EpochRecord {
                epoch,
                injected: Vec::new(),
                repaired: Vec::new(),
                healed: Vec::new(),
                policy_edit: false,
                active_faults: 0,
                truth: BTreeSet::new(),
                unattributed_missing: 0,
                missing_rules: 0,
                observations: 0,
                suspects: 0,
                hypothesis: BTreeSet::new(),
                consistent: true,
                attributed: true,
                oracle_checked: false,
                oracle_agrees: None,
                repair_clearances: 0,
            };

            // 1. Maybe repair one active fault (chosen uniformly).
            if !active.is_empty() && rng.gen_bool(self.repair_rate) {
                let slot = rng.gen_range(0..active.len());
                let fault = &active[slot];
                match &fault.repair {
                    RepairAction::Reinstall(rules) => {
                        let rules = rules.clone();
                        fabric.reinstall_rules(&rules);
                    }
                    RepairAction::RestoreSwitch(switch) => {
                        let switch = *switch;
                        fabric.repair_switch(switch);
                    }
                }
                let id = active[slot].id;
                faults[id].repaired_epoch.get_or_insert(epoch);
                faults[id].repair_attempts += 1;
                record.repaired.push(id);
            }

            // 2. Maybe land a concurrent policy edit.
            if rng.gen_bool(self.edit_rate) {
                let universe = fabric.universe().clone();
                if let Some(edit) = random_policy_edit(&universe, &mut rng) {
                    fabric.update_policy(edit.universe);
                    record.policy_edit = true;
                }
            }

            // 3. Maybe inject a new fault, possibly overlapping active ones.
            if active.len() < self.max_active && rng.gen_bool(self.inject_rate) {
                if let Some(id) = self.inject(
                    &mut fabric,
                    &mut rng,
                    &mut injector,
                    epoch,
                    &mut faults,
                    &mut active,
                ) {
                    record.injected.push(id);
                }
            }

            // 4. Reconcile ground truth with the fabric: release restored or
            //    retired rules, claim newly-lost ones, retire healed faults.
            record.unattributed_missing =
                reconcile(&fabric, &mut active, &mut faults, epoch, &mut record.healed);
            record.active_faults = active.len();
            for fault in &active {
                // A control-plane fault with no footprint yet (an idle flap or
                // crash) is real but silent: it only enters the ground truth
                // once rules actually go missing.
                if !fault.outstanding.is_empty() {
                    record
                        .truth
                        .extend(faults[fault.id].objects.iter().copied());
                }
            }

            // 5. The monitor catches up on the epoch: the probe diffs the
            //    fabric into typed events and the session ingests them,
            //    re-checking only what changed.
            let t0 = Instant::now();
            monitor
                .ingest_observation(&mut probe, &fabric)
                .expect("probe batches are sequential and reference live switches");
            incremental_cost.push(t0.elapsed().as_nanos() as f64);
            let report = monitor.full_report();

            // 6. Differential oracle: a from-scratch analysis of the same
            //    fabric state must be bit-identical. `ScoutEngine::analyze`
            //    is a pure read (`&self`, `&Fabric`) that never touches the
            //    session's caches, so no snapshot clone is needed.
            if oracle.checks(epoch, self.epochs) {
                let t0 = Instant::now();
                let reference = engine.analyze(&fabric);
                scratch_cost.push(t0.elapsed().as_nanos() as f64);
                record.oracle_checked = true;
                record.oracle_agrees = Some(reference == *report);
            }

            // 7. Lifecycle bookkeeping from the monitor's point of view.
            record.hypothesis = report.hypothesis.objects();
            record.consistent = report.is_consistent();
            record.missing_rules = report.missing_rule_count();
            record.observations = report.observations.len();
            record.suspects = report.suspect_objects.len();
            record.attributed = if record.truth.is_empty() {
                record.hypothesis.is_empty()
            } else {
                !record.hypothesis.is_disjoint(&record.truth)
            };
            for fault in &active {
                let rec = &mut faults[fault.id];
                if rec.detected_epoch.is_none()
                    && !fault.outstanding.is_empty()
                    && rec.objects.iter().any(|o| record.hypothesis.contains(o))
                {
                    rec.detected_epoch = Some(epoch);
                }
            }
            record.repair_clearances = record
                .healed
                .iter()
                .filter(|&&id| {
                    // Only repair-driven heals count: a fault retired by a
                    // policy edit alone (repaired_epoch == None) clearing the
                    // report says nothing about the repair machinery.
                    let objects = &faults[id].objects;
                    faults[id].repaired_epoch.is_some()
                        && objects.iter().any(|o| prev_hypothesis.contains(o))
                        && !objects.iter().any(|o| record.hypothesis.contains(o))
                })
                .count();

            prev_hypothesis = record.hypothesis.clone();
            epochs.push(record);
        }

        SoakRun {
            outcome: SoakOutcome { epochs, faults },
            elapsed: start.elapsed(),
            incremental_cost,
            scratch_cost,
            session_stats: monitor.stats().clone(),
        }
    }

    /// Samples and injects one fault; returns its id if it has any effect.
    fn inject(
        &self,
        fabric: &mut Fabric,
        rng: &mut StdRng,
        injector: &mut FaultInjector<StdRng>,
        epoch: usize,
        faults: &mut Vec<FaultRecord>,
        active: &mut Vec<ActiveFault>,
    ) -> Option<usize> {
        let kind = *SoakFaultKind::ALL.choose(rng).expect("non-empty kind list");
        let mut excluded = BTreeSet::new();
        let (objects, outstanding, repair) = match kind {
            SoakFaultKind::ObjectFull | SoakFaultKind::ObjectPartial => {
                let forced = if kind == SoakFaultKind::ObjectFull {
                    ObjectFaultKind::Full
                } else {
                    ObjectFaultKind::Partial
                };
                let candidates = FaultInjector::<StdRng>::candidate_objects(fabric);
                let &object = candidates.choose(rng)?;
                let fault = injector.inject_fault_on(fabric, object, forced)?;
                if fault.removed.is_empty() {
                    // Every rule of the object was already lost to an earlier,
                    // still-active fault: this injection changed nothing.
                    return None;
                }
                (
                    BTreeSet::from([object]),
                    fault.removed.iter().copied().collect(),
                    RepairAction::Reinstall(fault.removed),
                )
            }
            SoakFaultKind::Corruption | SoakFaultKind::Eviction => {
                let switches = fabric.universe().switch_ids();
                let &switch = switches.choose(rng)?;
                let fault = if kind == SoakFaultKind::Corruption {
                    scout_faults::random_tcam_corruption(fabric, switch, rng.gen_range(1..=3), rng)
                } else {
                    scout_faults::silent_rule_eviction(fabric, switch, rng.gen_range(1..=3))
                };
                if fault.affected_rules.is_empty() {
                    return None;
                }
                let affected: BTreeSet<TcamRule> = fault.affected_rules.iter().copied().collect();
                let outstanding: BTreeSet<LogicalRule> = fabric
                    .logical_rules()
                    .iter()
                    .filter(|r| r.switch == switch && affected.contains(&r.rule))
                    .copied()
                    .collect();
                let mut objects = fault.affected_objects(fabric);
                objects.insert(ObjectId::Switch(switch));
                (objects, outstanding, RepairAction::RestoreSwitch(switch))
            }
            SoakFaultKind::ChannelFlap | SoakFaultKind::AgentCrash => {
                let switches = fabric.universe().switch_ids();
                // One control-plane fault per switch at a time: a second flap
                // or crash on the same switch adds nothing to repair.
                let taken: BTreeSet<SwitchId> = active
                    .iter()
                    .filter_map(|f| match f.repair {
                        RepairAction::RestoreSwitch(s) => Some(s),
                        RepairAction::Reinstall(_) => None,
                    })
                    .collect();
                let free: Vec<SwitchId> = switches
                    .into_iter()
                    .filter(|s| !taken.contains(s))
                    .collect();
                let &switch = free.choose(rng)?;
                if kind == SoakFaultKind::ChannelFlap {
                    fabric.disconnect_switch(switch);
                } else {
                    fabric.crash_agent(switch);
                }
                // Rules already missing on the switch predate this fault and
                // must never be claimed by it during reconciliation.
                let present: BTreeSet<TcamRule> = fabric.tcam_rules(switch).into_iter().collect();
                excluded = fabric
                    .logical_rules()
                    .iter()
                    .filter(|r| r.switch == switch && !present.contains(&r.rule))
                    .copied()
                    .collect();
                // No rules are lost yet — the footprint accrues if pushes
                // (edits, repairs of other faults) miss the switch.
                (
                    BTreeSet::from([ObjectId::Switch(switch)]),
                    BTreeSet::new(),
                    RepairAction::RestoreSwitch(switch),
                )
            }
        };

        let id = faults.len();
        faults.push(FaultRecord {
            id,
            kind,
            objects,
            injected_epoch: epoch,
            initial_footprint: outstanding.len(),
            detected_epoch: None,
            repaired_epoch: None,
            healed_epoch: None,
            repair_attempts: 0,
        });
        active.push(ActiveFault {
            id,
            repair,
            outstanding,
            excluded,
        });
        Some(id)
    }
}

/// Derives the decision-stream seed from the timeline seed (kept independent
/// of the workload-generation stream, which consumes the raw seed).
fn soak_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0xA076_1D64_78BD_642F)
        .wrapping_add(0x9E6D)
}

/// Reconciles every active fault's outstanding set against the fabric:
///
/// 1. rules a fault owned that are back in the TCAM (any repair) or gone from
///    the compiled policy (a policy edit retired them) are released;
/// 2. missing rules owned by nobody are claimed by the control-plane fault of
///    their switch, in injection order (a flap/crash switch missed a push) —
///    the claiming fault's ground-truth objects grow accordingly; rules that
///    were already missing when the fault was injected are never claimed;
/// 3. faults with no remaining footprint *and* a healthy switch are healed.
///
/// Returns the number of missing rules no fault could own (e.g. installs
/// dropped by a TCAM overflow).
fn reconcile(
    fabric: &Fabric,
    active: &mut Vec<ActiveFault>,
    faults: &mut [FaultRecord],
    epoch: usize,
    healed: &mut Vec<usize>,
) -> usize {
    // The missing set: compiled logical rules whose TCAM rendering is absent.
    let tcam = fabric.collect_tcam();
    let tcam_sets: std::collections::BTreeMap<SwitchId, BTreeSet<TcamRule>> = tcam
        .into_iter()
        .map(|(s, rules)| (s, rules.into_iter().collect()))
        .collect();
    let mut missing: BTreeSet<LogicalRule> = fabric
        .logical_rules()
        .iter()
        .filter(|r| {
            tcam_sets
                .get(&r.switch)
                .is_none_or(|set| !set.contains(&r.rule))
        })
        .copied()
        .collect();

    // 1. Each fault keeps only the rules that are still missing; claimed
    //    rules leave the pool so overlapping faults stay disjoint.
    for fault in active.iter_mut() {
        fault.outstanding.retain(|r| missing.remove(r));
    }

    // 2. Orphaned missing rules go to the control-plane fault of their
    //    switch, if one is active — but never rules that were already missing
    //    when that fault was injected (`excluded`): those predate it and
    //    attributing them would break the rule-exact ground truth.
    if !missing.is_empty() {
        for fault in active.iter_mut() {
            let RepairAction::RestoreSwitch(switch) = fault.repair else {
                continue;
            };
            let is_control_plane = matches!(
                faults[fault.id].kind,
                SoakFaultKind::ChannelFlap | SoakFaultKind::AgentCrash
            );
            if !is_control_plane {
                continue;
            }
            let claimed: Vec<LogicalRule> = missing
                .iter()
                .filter(|r| r.switch == switch && !fault.excluded.contains(r))
                .copied()
                .collect();
            for rule in claimed {
                missing.remove(&rule);
                fault.outstanding.insert(rule);
                faults[fault.id]
                    .objects
                    .extend(rule.provenance.objects_with_switch(rule.switch));
            }
        }
    }

    // 3. Retire healed faults: no footprint left, and for switch-scoped
    //    repairs the switch's control plane must be healthy again (an idle
    //    flap is still a fault waiting to bite).
    let mut still_active = Vec::with_capacity(active.len());
    for fault in active.drain(..) {
        let control_plane_down = match fault.repair {
            RepairAction::RestoreSwitch(switch) => {
                let channel_down = fabric.channel(switch).is_some_and(|c| !c.is_connected());
                let agent_down = fabric.agent(switch).is_some_and(|a| a.is_crashed());
                channel_down || agent_down
            }
            RepairAction::Reinstall(_) => false,
        };
        if fault.outstanding.is_empty() && !control_plane_down {
            faults[fault.id].healed_epoch = Some(epoch);
            healed.push(fault.id);
        } else {
            still_active.push(fault);
        }
    }
    *active = still_active;

    missing.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_core::OracleCadence;
    use scout_workload::TestbedSpec;

    fn small_timeline(epochs: usize, seed: u64) -> Timeline {
        let spec = TestbedSpec {
            epgs: 12,
            contracts: 8,
            filters: 4,
            target_pairs: 20,
            switches: 3,
            tcam_capacity: 1024,
        };
        Timeline::new(WorkloadKind::Testbed(spec), epochs, seed)
    }

    #[test]
    fn timeline_is_deterministic_for_a_seed() {
        let timeline = small_timeline(40, 11);
        let a = timeline.run();
        let b = timeline.run();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.outcome.report(), b.outcome.report());
        let c = small_timeline(40, 12).run();
        assert_ne!(a.outcome, c.outcome);
    }

    #[test]
    fn oracle_agrees_at_every_epoch() {
        let run = small_timeline(60, 7).run();
        assert_eq!(run.outcome.epochs.len(), 60);
        for epoch in &run.outcome.epochs {
            assert!(epoch.oracle_checked, "epoch {}", epoch.epoch);
            assert_eq!(epoch.oracle_agrees, Some(true), "epoch {}", epoch.epoch);
        }
        assert!(run.outcome.oracle_disagreements().is_empty());
        assert_eq!(run.incremental_cost.len(), 60);
        assert_eq!(run.scratch_cost.len(), 60);
        // The monitor session saw exactly one ingest per epoch and recorded
        // its latency.
        assert_eq!(run.session_stats.ingests, 60);
        assert_eq!(run.session_stats.ingest_latency.len(), 60);
    }

    #[test]
    fn timeline_exercises_the_full_lifecycle() {
        let run = small_timeline(120, 3).run();
        let report = run.outcome.report();
        assert!(report.injections >= 10, "{report:?}");
        assert!(report.healed_faults >= 5, "{report:?}");
        assert!(report.repair_attempts >= 5, "{report:?}");
        assert!(report.policy_edits >= 5, "{report:?}");
        assert!(report.overlap_epochs >= 5, "{report:?}");
        assert!(report.detected_faults >= 5, "{report:?}");
        assert!(!report.detection_latency.is_empty());
        // Repairs visibly clear previously-localized objects.
        assert!(report.repair_clearances >= 1, "{report:?}");
        // The monitor ends no worse than it started: counters are coherent.
        assert!(report.attributed_epochs <= report.faulty_epochs);
        assert_eq!(report.oracle_disagreements, 0);
        assert!(!report.table().is_empty());
        assert_eq!(report.timeline_table(40).len(), 3);
    }

    #[test]
    fn oracle_stride_checks_subset_including_last() {
        let timeline = Timeline {
            engine: EngineConfig {
                oracle: OracleCadence::Stride(7),
                ..EngineConfig::default()
            },
            ..small_timeline(30, 5)
        };
        let run = timeline.run();
        let checked: Vec<usize> = run
            .outcome
            .epochs
            .iter()
            .filter(|e| e.oracle_checked)
            .map(|e| e.epoch)
            .collect();
        assert!(checked.contains(&0));
        assert!(checked.contains(&29), "final epoch always checked");
        assert!(checked.len() < 30);
        for epoch in &run.outcome.epochs {
            assert_ne!(epoch.oracle_agrees, Some(false));
        }
        // Never: no checks, no scratch cost samples.
        let silent = Timeline {
            engine: EngineConfig {
                oracle: OracleCadence::Never,
                ..EngineConfig::default()
            },
            ..small_timeline(10, 5)
        }
        .run();
        assert!(silent.outcome.epochs.iter().all(|e| !e.oracle_checked));
        assert!(silent.scratch_cost.is_empty());
    }

    #[test]
    fn control_plane_faults_never_claim_preexisting_orphans() {
        use scout_policy::sample;
        use scout_workload::add_filter_to_contract;

        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        // A silent, unowned loss predates the flap: 2 port-700 rules on S2.
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);

        // Inject a channel flap the way the engine does, snapshotting the
        // rules already missing on the switch as excluded.
        fabric.disconnect_switch(sample::S2);
        let present: BTreeSet<TcamRule> = fabric.tcam_rules(sample::S2).into_iter().collect();
        let excluded: BTreeSet<LogicalRule> = fabric
            .logical_rules()
            .iter()
            .filter(|r| r.switch == sample::S2 && !present.contains(&r.rule))
            .copied()
            .collect();
        assert_eq!(excluded.len(), 2);
        let mut active = vec![ActiveFault {
            id: 0,
            repair: RepairAction::RestoreSwitch(sample::S2),
            outstanding: BTreeSet::new(),
            excluded,
        }];
        let mut faults = vec![FaultRecord {
            id: 0,
            kind: SoakFaultKind::ChannelFlap,
            objects: BTreeSet::from([ObjectId::Switch(sample::S2)]),
            injected_epoch: 0,
            initial_footprint: 0,
            detected_epoch: None,
            repaired_epoch: None,
            healed_epoch: None,
            repair_attempts: 0,
        }];
        let mut healed = Vec::new();

        // The pre-existing loss stays unattributed: the flap owns nothing.
        let orphans = reconcile(&fabric, &mut active, &mut faults, 0, &mut healed);
        assert_eq!(orphans, 2);
        assert!(active[0].outstanding.is_empty());
        assert_eq!(
            faults[0].objects,
            BTreeSet::from([ObjectId::Switch(sample::S2)])
        );

        // A policy edit pushed while the channel is down *is* the flap's
        // fault: the new rules on S2 are lost and claimed, the old orphans
        // still are not.
        let edited = add_filter_to_contract(
            fabric.universe(),
            sample::C_APP_DB,
            scout_policy::FilterId::new(50),
            8443,
        )
        .unwrap();
        fabric.update_policy(edited);
        let orphans = reconcile(&fabric, &mut active, &mut faults, 1, &mut healed);
        assert_eq!(orphans, 2, "pre-existing losses remain unowned");
        assert_eq!(active[0].outstanding.len(), 2, "lost pushes are claimed");
        assert!(faults[0]
            .objects
            .contains(&ObjectId::Filter(scout_policy::FilterId::new(50))));
        assert!(healed.is_empty());
    }

    #[test]
    fn healed_faults_stay_healed_until_reinjected() {
        let run = small_timeline(80, 21).run();
        for fault in &run.outcome.faults {
            if let Some(healed) = fault.healed_epoch {
                assert!(healed >= fault.injected_epoch);
                if let Some(repaired) = fault.repaired_epoch {
                    assert!(repaired <= healed, "fault {}", fault.id);
                }
                if let Some(latency) = fault.detection_latency() {
                    assert!(fault.injected_epoch + latency <= healed);
                }
            }
        }
        // Epoch records and fault records tell the same story.
        let healed_from_epochs: usize = run.outcome.epochs.iter().map(|e| e.healed.len()).sum();
        let healed_from_faults = run
            .outcome
            .faults
            .iter()
            .filter(|f| f.healed_epoch.is_some())
            .count();
        assert_eq!(healed_from_epochs, healed_from_faults);
    }
}
