//! Aggregation helpers: run summaries, CDFs and bins.

/// Mean / standard deviation / extrema of a set of measurements (one per
/// experiment repetition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample set).
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum sample value.
    pub min: f64,
    /// Maximum sample value.
    pub max: f64,
}

impl Summary {
    /// Returns `true` if the summary was built from zero samples — its mean,
    /// stddev and extrema are then the 0.0 placeholders, not measurements, and
    /// reports should render it as "no data" rather than as a genuine zero
    /// (see [`crate::table::fmt_mean`]).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Summarizes an iterator of samples.
    pub fn of<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let values: Vec<f64> = samples.into_iter().collect();
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count,
            mean,
            stddev: variance.sqrt(),
            min,
            max,
        }
    }
}

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (order does not matter).
    pub fn of<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples that are `<= x` (0 for an empty CDF).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of an empty cdf");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Summary statistics (mean, stddev, extrema) over the CDF's samples —
    /// convenient when a distribution is reported both ways, as the campaign
    /// aggregates do for γ.
    pub fn summary(&self) -> Summary {
        Summary::of(self.sorted.iter().copied())
    }

    /// The `(value, fraction ≤ value)` points of the empirical CDF, one per
    /// sample, suitable for plotting or printing.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }
}

/// A set of half-open numeric bins `[lo, hi)` used to group measurements (e.g.
/// γ by suspect-set size in Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct Bins {
    edges: Vec<(f64, f64)>,
    samples: Vec<Vec<f64>>,
}

impl Bins {
    /// Creates bins from `(lo, hi)` edge pairs.
    ///
    /// # Panics
    ///
    /// Panics if any bin has `lo >= hi`.
    pub fn new(edges: &[(f64, f64)]) -> Self {
        for &(lo, hi) in edges {
            assert!(lo < hi, "bin bounds must satisfy lo < hi");
        }
        Self {
            edges: edges.to_vec(),
            samples: vec![Vec::new(); edges.len()],
        }
    }

    /// Adds a `(key, value)` observation: `value` is recorded in the first bin
    /// whose range contains `key`. Returns `false` if no bin matched.
    pub fn add(&mut self, key: f64, value: f64) -> bool {
        for (i, &(lo, hi)) in self.edges.iter().enumerate() {
            if key >= lo && key < hi {
                self.samples[i].push(value);
                return true;
            }
        }
        false
    }

    /// The bin edges.
    pub fn edges(&self) -> &[(f64, f64)] {
        &self.edges
    }

    /// Per-bin summaries, in bin order.
    pub fn summaries(&self) -> Vec<Summary> {
        self.samples
            .iter()
            .map(|s| Summary::of(s.iter().copied()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.stddev, 0.0);
        // The placeholder extrema are finite zeros, not infinities or NaN, so
        // downstream arithmetic and Eq-based determinism checks stay total.
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn summary_of_single_sample_is_degenerate() {
        let s = Summary::of([7.5]);
        assert!(!s.is_empty());
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn cdf_of_single_sample_is_total() {
        let cdf = Cdf::of([2.5]);
        assert_eq!(cdf.len(), 1);
        // Every quantile of a one-point distribution is that point.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(cdf.quantile(q), 2.5, "q = {q}");
        }
        assert_eq!(cdf.fraction_le(2.4), 0.0);
        assert_eq!(cdf.fraction_le(2.5), 1.0);
        assert_eq!(cdf.points(), vec![(2.5, 1.0)]);
        assert_eq!(cdf.summary(), Summary::of([2.5]));
    }

    #[test]
    fn cdf_fractions_and_quantiles() {
        let cdf = Cdf::of([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.fraction_le(0.5), 0.0);
        assert_eq!(cdf.fraction_le(3.0), 0.6);
        assert_eq!(cdf.fraction_le(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        let points = cdf.points();
        assert_eq!(points.first(), Some(&(1.0, 0.2)));
        assert_eq!(points.last(), Some(&(5.0, 1.0)));
    }

    #[test]
    fn cdf_of_empty() {
        let cdf = Cdf::of(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_le(1.0), 0.0);
        assert_eq!(cdf.summary().count, 0);
    }

    #[test]
    fn cdf_summary_matches_direct_summary() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let cdf = Cdf::of(samples);
        assert_eq!(cdf.summary(), Summary::of(samples));
    }

    #[test]
    #[should_panic(expected = "empty cdf")]
    fn quantile_of_empty_panics() {
        let _ = Cdf::of(std::iter::empty()).quantile(0.5);
    }

    #[test]
    fn bins_group_by_key() {
        let mut bins = Bins::new(&[(1.0, 10.0), (10.0, 20.0), (20.0, 40.0)]);
        assert!(bins.add(5.0, 0.1));
        assert!(bins.add(5.0, 0.3));
        assert!(bins.add(15.0, 0.5));
        assert!(!bins.add(100.0, 0.9));
        let summaries = bins.summaries();
        assert_eq!(summaries[0].count, 2);
        assert!((summaries[0].mean - 0.2).abs() < 1e-12);
        assert_eq!(summaries[1].count, 1);
        assert_eq!(summaries[2].count, 0);
        assert_eq!(bins.edges().len(), 3);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn invalid_bin_rejected() {
        let _ = Bins::new(&[(5.0, 5.0)]);
    }
}
