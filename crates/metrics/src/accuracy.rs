//! Accuracy metrics: precision, recall, F1 and the suspect-set reduction γ.
//!
//! The paper measures localization quality with precision `|G ∩ H| / |H|` and
//! recall `|G ∩ H| / |G|`, where `H` is the hypothesis and `G` the ground
//! truth, and reports the suspect-set reduction ratio γ (hypothesis size over
//! the number of objects the failed EPG pairs depend on) as the measure of how
//! much manual work SCOUT saves (§VI).

use std::collections::BTreeSet;

use scout_policy::ObjectId;

/// Precision, recall and derived quantities of one localization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Fraction of reported objects that are truly faulty (`|G∩H| / |H|`).
    pub precision: f64,
    /// Fraction of truly faulty objects that are reported (`|G∩H| / |G|`).
    pub recall: f64,
    /// Number of true positives (`|G∩H|`).
    pub true_positives: usize,
    /// Number of false positives (`|H \ G|`).
    pub false_positives: usize,
    /// Number of false negatives (`|G \ H|`).
    pub false_negatives: usize,
}

impl Accuracy {
    /// Computes accuracy of `hypothesis` against `ground_truth`.
    ///
    /// An empty hypothesis has precision 1 by convention (no false positives);
    /// an empty ground truth has recall 1 (nothing to find).
    pub fn of(ground_truth: &BTreeSet<ObjectId>, hypothesis: &BTreeSet<ObjectId>) -> Self {
        let true_positives = ground_truth.intersection(hypothesis).count();
        let false_positives = hypothesis.len() - true_positives;
        let false_negatives = ground_truth.len() - true_positives;
        let precision = if hypothesis.is_empty() {
            1.0
        } else {
            true_positives as f64 / hypothesis.len() as f64
        };
        let recall = if ground_truth.is_empty() {
            1.0
        } else {
            true_positives as f64 / ground_truth.len() as f64
        };
        Self {
            precision,
            recall,
            true_positives,
            false_positives,
            false_negatives,
        }
    }

    /// The harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Convenience wrapper: precision of `hypothesis` against `ground_truth`.
pub fn precision(ground_truth: &BTreeSet<ObjectId>, hypothesis: &BTreeSet<ObjectId>) -> f64 {
    Accuracy::of(ground_truth, hypothesis).precision
}

/// Convenience wrapper: recall of `hypothesis` against `ground_truth`.
pub fn recall(ground_truth: &BTreeSet<ObjectId>, hypothesis: &BTreeSet<ObjectId>) -> f64 {
    Accuracy::of(ground_truth, hypothesis).recall
}

/// The suspect-set reduction ratio γ = |hypothesis| / |suspect set| (§VI).
///
/// Returns 0 when the suspect set is empty (nothing to examine either way).
pub fn gamma(hypothesis_size: usize, suspect_set_size: usize) -> f64 {
    if suspect_set_size == 0 {
        0.0
    } else {
        hypothesis_size as f64 / suspect_set_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{EpgId, FilterId, VrfId};

    fn objs(ids: &[u32]) -> BTreeSet<ObjectId> {
        ids.iter()
            .map(|&i| ObjectId::Filter(FilterId::new(i)))
            .collect()
    }

    #[test]
    fn perfect_hypothesis_scores_one() {
        let g = objs(&[1, 2, 3]);
        let acc = Accuracy::of(&g, &g.clone());
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.f1(), 1.0);
        assert_eq!(acc.true_positives, 3);
        assert_eq!(acc.false_positives, 0);
        assert_eq!(acc.false_negatives, 0);
    }

    #[test]
    fn partial_overlap_is_measured() {
        let g = objs(&[1, 2, 3, 4]);
        let h = objs(&[3, 4, 5]);
        let acc = Accuracy::of(&g, &h);
        assert!((acc.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.recall - 0.5).abs() < 1e-12);
        assert_eq!(acc.true_positives, 2);
        assert_eq!(acc.false_positives, 1);
        assert_eq!(acc.false_negatives, 2);
        assert!(acc.f1() > 0.0 && acc.f1() < 1.0);
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let g = objs(&[1]);
        let h = objs(&[2]);
        let acc = Accuracy::of(&g, &h);
        assert_eq!(acc.precision, 0.0);
        assert_eq!(acc.recall, 0.0);
        assert_eq!(acc.f1(), 0.0);
    }

    #[test]
    fn empty_edge_cases_follow_conventions() {
        let empty = BTreeSet::new();
        let some = objs(&[1]);
        assert_eq!(Accuracy::of(&some, &empty).precision, 1.0);
        assert_eq!(Accuracy::of(&some, &empty).recall, 0.0);
        assert_eq!(Accuracy::of(&empty, &some).recall, 1.0);
        assert_eq!(Accuracy::of(&empty, &some).precision, 0.0);
        assert_eq!(Accuracy::of(&empty, &empty).precision, 1.0);
        assert_eq!(Accuracy::of(&empty, &empty).recall, 1.0);
    }

    #[test]
    fn object_classes_are_distinguished() {
        // A VRF and an EPG with the same raw id must not be confused.
        let g: BTreeSet<ObjectId> = [ObjectId::Vrf(VrfId::new(1))].into_iter().collect();
        let h: BTreeSet<ObjectId> = [ObjectId::Epg(EpgId::new(1))].into_iter().collect();
        assert_eq!(precision(&g, &h), 0.0);
        assert_eq!(recall(&g, &h), 0.0);
    }

    #[test]
    fn gamma_ratio() {
        assert_eq!(gamma(5, 100), 0.05);
        assert_eq!(gamma(0, 100), 0.0);
        assert_eq!(gamma(3, 0), 0.0);
    }
}
