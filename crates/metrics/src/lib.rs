//! # scout-metrics
//!
//! Evaluation metrics and small reporting utilities for the SCOUT reproduction
//! (ICDCS 2018): precision/recall/F1 against an injected ground truth, the
//! suspect-set reduction ratio γ, empirical CDFs (Figure 3), per-bin summaries
//! (Figure 7), run statistics (mean ± stddev over repetitions) and aligned
//! text tables for the benchmark harness output.
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeSet;
//! use scout_metrics::Accuracy;
//! use scout_policy::{FilterId, ObjectId};
//!
//! let truth: BTreeSet<ObjectId> = [ObjectId::Filter(FilterId::new(1))].into_iter().collect();
//! let hypothesis = truth.clone();
//! let acc = Accuracy::of(&truth, &hypothesis);
//! assert_eq!(acc.precision, 1.0);
//! assert_eq!(acc.recall, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod stats;
pub mod table;

pub use accuracy::{gamma, precision, recall, Accuracy};
pub use stats::{Bins, Cdf, Summary};
pub use table::{fmt3, Table};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use scout_policy::{FilterId, ObjectId};
    use std::collections::BTreeSet;

    fn to_set(ids: &[u32]) -> BTreeSet<ObjectId> {
        ids.iter().map(|&i| ObjectId::Filter(FilterId::new(i))).collect()
    }

    proptest! {
        /// Precision and recall are always in [0, 1] and symmetric in the
        /// expected way: swapping G and H swaps precision and recall.
        #[test]
        fn precision_recall_bounds_and_duality(
            g in proptest::collection::vec(0u32..20, 0..10),
            h in proptest::collection::vec(0u32..20, 0..10),
        ) {
            let g = to_set(&g);
            let h = to_set(&h);
            let acc = Accuracy::of(&g, &h);
            prop_assert!((0.0..=1.0).contains(&acc.precision));
            prop_assert!((0.0..=1.0).contains(&acc.recall));
            prop_assert!((0.0..=1.0).contains(&acc.f1()));
            let swapped = Accuracy::of(&h, &g);
            if !g.is_empty() && !h.is_empty() {
                prop_assert!((acc.precision - swapped.recall).abs() < 1e-12);
                prop_assert!((acc.recall - swapped.precision).abs() < 1e-12);
            }
        }

        /// CDF fractions are monotone and reach 1 at the maximum sample.
        #[test]
        fn cdf_is_monotone(samples in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let cdf = Cdf::of(samples.iter().copied());
            let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((cdf.fraction_le(max) - 1.0).abs() < 1e-12);
            let mut prev = 0.0;
            for x in [0.0, 10.0, 25.0, 50.0, 75.0, 100.0] {
                let f = cdf.fraction_le(x);
                prop_assert!(f + 1e-12 >= prev);
                prev = f;
            }
        }

        /// Summary mean always lies between min and max.
        #[test]
        fn summary_mean_within_bounds(samples in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
            let s = Summary::of(samples.iter().copied());
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.stddev >= 0.0);
        }
    }
}
