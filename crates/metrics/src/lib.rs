//! # scout-metrics
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! Evaluation metrics and small reporting utilities for the SCOUT reproduction
//! (ICDCS 2018): precision/recall/F1 against an injected ground truth, the
//! suspect-set reduction ratio γ, empirical CDFs (Figure 3), per-bin summaries
//! (Figure 7), run statistics (mean ± stddev over repetitions) and aligned
//! text tables for the benchmark harness output.
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeSet;
//! use scout_metrics::Accuracy;
//! use scout_policy::{FilterId, ObjectId};
//!
//! let truth: BTreeSet<ObjectId> = [ObjectId::Filter(FilterId::new(1))].into_iter().collect();
//! let hypothesis = truth.clone();
//! let acc = Accuracy::of(&truth, &hypothesis);
//! assert_eq!(acc.precision, 1.0);
//! assert_eq!(acc.recall, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod rank;
pub mod series;
pub mod stats;
pub mod table;

pub use accuracy::{gamma, precision, recall, Accuracy};
pub use rank::RankQuality;
pub use series::TimeSeries;
pub use stats::{Bins, Cdf, Summary};
pub use table::{fmt3, fmt_mean, Table};

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use scout_policy::{FilterId, ObjectId};
    use std::collections::BTreeSet;

    fn random_set(rng: &mut StdRng) -> BTreeSet<ObjectId> {
        let count = rng.gen_range(0usize..10);
        (0..count)
            .map(|_| ObjectId::Filter(FilterId::new(rng.gen_range(0u32..20))))
            .collect()
    }

    fn random_samples(rng: &mut StdRng, lo: f64, hi: f64, max: usize) -> Vec<f64> {
        let count = rng.gen_range(1..=max);
        (0..count).map(|_| rng.gen_range(lo..hi)).collect()
    }

    /// Precision and recall are always in [0, 1] and symmetric in the expected
    /// way: swapping G and H swaps precision and recall.
    #[test]
    fn precision_recall_bounds_and_duality() {
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_set(&mut rng);
            let h = random_set(&mut rng);
            let acc = Accuracy::of(&g, &h);
            assert!((0.0..=1.0).contains(&acc.precision), "seed {seed}");
            assert!((0.0..=1.0).contains(&acc.recall), "seed {seed}");
            assert!((0.0..=1.0).contains(&acc.f1()), "seed {seed}");
            let swapped = Accuracy::of(&h, &g);
            if !g.is_empty() && !h.is_empty() {
                assert!(
                    (acc.precision - swapped.recall).abs() < 1e-12,
                    "seed {seed}"
                );
                assert!(
                    (acc.recall - swapped.precision).abs() < 1e-12,
                    "seed {seed}"
                );
            }
        }
    }

    /// CDF fractions are monotone and reach 1 at the maximum sample.
    #[test]
    fn cdf_is_monotone() {
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples = random_samples(&mut rng, 0.0, 100.0, 49);
            let cdf = Cdf::of(samples.iter().copied());
            let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!((cdf.fraction_le(max) - 1.0).abs() < 1e-12, "seed {seed}");
            let mut prev = 0.0;
            for x in [0.0, 10.0, 25.0, 50.0, 75.0, 100.0] {
                let f = cdf.fraction_le(x);
                assert!(f + 1e-12 >= prev, "seed {seed}");
                prev = f;
            }
        }
    }

    /// Summary mean always lies between min and max.
    #[test]
    fn summary_mean_within_bounds() {
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples = random_samples(&mut rng, -50.0, 50.0, 39);
            let s = Summary::of(samples.iter().copied());
            assert!(s.mean >= s.min - 1e-9, "seed {seed}");
            assert!(s.mean <= s.max + 1e-9, "seed {seed}");
            assert!(s.stddev >= 0.0, "seed {seed}");
        }
    }
}
