//! Per-epoch time series for long-horizon (soak) runs.
//!
//! A soak timeline produces one sample per epoch for each tracked quantity —
//! missing-rule counts, active faults, incremental vs from-scratch analysis
//! cost. [`TimeSeries`] keeps the raw samples in epoch order (so runs stay
//! comparable bit for bit) and derives the aggregate views the reports print:
//! a [`Summary`], a [`Cdf`], and a compact unicode sparkline for timeline
//! tables.

use crate::stats::{Cdf, Summary};

/// A named sequence of per-epoch samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Builds a series directly from samples in epoch order.
    pub fn of<I: IntoIterator<Item = f64>>(name: impl Into<String>, samples: I) -> Self {
        Self {
            name: name.into(),
            values: samples.into_iter().collect(),
        }
    }

    /// The display name of the series.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends the sample of the next epoch.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no epoch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw samples in epoch order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Summary statistics over all epochs (zeroed for an empty series).
    pub fn summary(&self) -> Summary {
        Summary::of(self.values.iter().copied())
    }

    /// The empirical distribution of the samples (epoch order discarded).
    pub fn cdf(&self) -> Cdf {
        Cdf::of(self.values.iter().copied())
    }

    /// A compact unicode sparkline of the series, at most `width` characters
    /// wide (consecutive epochs are averaged into buckets when the series is
    /// longer than `width`). Returns an empty string for an empty series or
    /// zero width.
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.values.is_empty() || width == 0 {
            return String::new();
        }
        let buckets = width.min(self.values.len());
        let mut means = Vec::with_capacity(buckets);
        for b in 0..buckets {
            // Even partition of the epoch range into `buckets` slices.
            let lo = b * self.values.len() / buckets;
            let hi = ((b + 1) * self.values.len() / buckets).max(lo + 1);
            let slice = &self.values[lo..hi];
            means.push(slice.iter().sum::<f64>() / slice.len() as f64);
        }
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(f64::MIN_POSITIVE);
        means
            .into_iter()
            .map(|m| {
                let level = ((m - min) / span * 7.0).round() as usize;
                BARS[level.min(7)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_aggregate() {
        let mut s = TimeSeries::new("missing rules");
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        for v in [0.0, 4.0, 4.0, 0.0] {
            s.push(v);
        }
        assert_eq!(s.name(), "missing rules");
        assert_eq!(s.len(), 4);
        assert_eq!(s.last(), Some(0.0));
        assert_eq!(s.summary().mean, 2.0);
        assert_eq!(s.cdf().quantile(1.0), 4.0);
        assert_eq!(s.values(), &[0.0, 4.0, 4.0, 0.0]);
    }

    #[test]
    fn of_matches_pushing() {
        let mut pushed = TimeSeries::new("x");
        pushed.push(1.0);
        pushed.push(2.0);
        assert_eq!(TimeSeries::of("x", [1.0, 2.0]), pushed);
    }

    #[test]
    fn empty_series_aggregates_are_total() {
        let s = TimeSeries::new("empty");
        assert_eq!(s.summary().count, 0);
        assert!(s.cdf().is_empty());
        assert_eq!(s.sparkline(10), "");
    }

    #[test]
    fn sparkline_shape() {
        let s = TimeSeries::of("ramp", (0..32).map(f64::from));
        let line = s.sparkline(8);
        assert_eq!(line.chars().count(), 8);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
        // Wider than the series: one bucket per sample.
        let short = TimeSeries::of("short", [1.0, 2.0]);
        assert_eq!(short.sparkline(10).chars().count(), 2);
        // A flat series renders at a constant level, never NaN-panics.
        let flat = TimeSeries::of("flat", [3.0; 5]);
        let line = flat.sparkline(5);
        assert_eq!(line.chars().count(), 5);
        let first = line.chars().next().unwrap();
        assert!(line.chars().all(|c| c == first));
        // Zero width is an empty render.
        assert_eq!(s.sparkline(0), "");
    }
}
