//! Rank-quality summaries for ranked diagnoses.
//!
//! When the correlation engine can only produce a *ranked* list of candidate
//! root causes (degraded telemetry: missing or incomplete fault logs), the
//! evaluation question becomes "how high does the true root cause rank?".
//! [`RankQuality`] aggregates the standard retrieval measures over a
//! population of queries: top-1 rate, top-3 rate and mean reciprocal rank.

use crate::table::fmt3;

/// Aggregated rank quality over a population of ranked-diagnosis queries.
///
/// Each query contributes the 1-based rank at which the true root cause was
/// found, or `None` if the ranking missed it entirely (a miss contributes a
/// reciprocal rank of 0 and counts toward no top-k bucket).
///
/// # Example
///
/// ```
/// use scout_metrics::RankQuality;
///
/// // Three queries: hit at rank 1, hit at rank 3, complete miss.
/// let q = RankQuality::of([Some(1), Some(3), None]);
/// assert_eq!(q.queries(), 3);
/// assert_eq!(q.top1_rate(), 1.0 / 3.0);
/// assert_eq!(q.top3_rate(), 2.0 / 3.0);
/// assert!((q.mrr() - (1.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankQuality {
    queries: usize,
    top1: usize,
    top3: usize,
    reciprocal_sum: f64,
}

impl RankQuality {
    /// Aggregates a population of per-query ranks (1-based; `None` = miss).
    pub fn of(ranks: impl IntoIterator<Item = Option<usize>>) -> Self {
        let mut q = Self::default();
        for rank in ranks {
            q.push(rank);
        }
        q
    }

    /// Adds one query's outcome.
    pub fn push(&mut self, rank: Option<usize>) {
        self.queries += 1;
        if let Some(rank) = rank {
            assert!(rank >= 1, "ranks are 1-based");
            if rank == 1 {
                self.top1 += 1;
            }
            if rank <= 3 {
                self.top3 += 1;
            }
            self.reciprocal_sum += 1.0 / rank as f64;
        }
    }

    /// Number of queries aggregated.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Returns `true` if no query has been aggregated yet.
    pub fn is_empty(&self) -> bool {
        self.queries == 0
    }

    /// Fraction of queries whose true root cause ranked first
    /// (0 over an empty population).
    pub fn top1_rate(&self) -> f64 {
        self.rate(self.top1)
    }

    /// Fraction of queries whose true root cause ranked in the top 3
    /// (0 over an empty population).
    pub fn top3_rate(&self) -> f64 {
        self.rate(self.top3)
    }

    /// Mean reciprocal rank: misses contribute 0 (0 over an empty
    /// population).
    pub fn mrr(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.reciprocal_sum / self.queries as f64
        }
    }

    /// Renders `top3_rate` for a table cell ("-" for an empty population).
    pub fn fmt_top3(&self) -> String {
        if self.is_empty() {
            "-".to_string()
        } else {
            fmt3(self.top3_rate())
        }
    }

    /// Renders `mrr` for a table cell ("-" for an empty population).
    pub fn fmt_mrr(&self) -> String {
        if self.is_empty() {
            "-".to_string()
        } else {
            fmt3(self.mrr())
        }
    }

    fn rate(&self, hits: usize) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            hits as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_population_renders_dashes_and_zero_rates() {
        let q = RankQuality::default();
        assert!(q.is_empty());
        assert_eq!(q.queries(), 0);
        assert_eq!(q.top1_rate(), 0.0);
        assert_eq!(q.top3_rate(), 0.0);
        assert_eq!(q.mrr(), 0.0);
        assert_eq!(q.fmt_top3(), "-");
        assert_eq!(q.fmt_mrr(), "-");
    }

    #[test]
    fn rates_and_mrr_follow_the_textbook_definitions() {
        let q = RankQuality::of([Some(1), Some(2), Some(3), Some(4), None]);
        assert_eq!(q.queries(), 5);
        assert_eq!(q.top1_rate(), 0.2);
        assert_eq!(q.top3_rate(), 0.6);
        let expected = (1.0 + 0.5 + 1.0 / 3.0 + 0.25) / 5.0;
        assert!((q.mrr() - expected).abs() < 1e-12);
        assert_eq!(q.fmt_top3(), "0.600");
    }

    #[test]
    fn incremental_push_matches_bulk_construction() {
        let mut incremental = RankQuality::default();
        for rank in [Some(2), None, Some(1)] {
            incremental.push(rank);
        }
        assert_eq!(incremental, RankQuality::of([Some(2), None, Some(1)]));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_is_rejected() {
        RankQuality::of([Some(0)]);
    }
}
