//! Plain-text table rendering for the benchmark harness output.
//!
//! The per-figure binaries print the rows the paper reports (precision/recall
//! per fault count, γ per suspect-set bin, …); this small renderer keeps the
//! output aligned and copy-pastable into EXPERIMENTS.md.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Missing cells render as empty; extra cells are kept.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        if !self.title.is_empty() {
            writeln!(f, "# {}", self.title)?;
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<width$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with three decimals, the precision used throughout the
/// experiment output.
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats the mean of a [`Summary`](crate::stats::Summary) for a report cell:
/// `"-"` when the summary holds no samples (so a missing population is never
/// rendered as a fabricated `0.000`), three decimals otherwise.
pub fn fmt_mean(summary: &crate::stats::Summary) -> String {
    if summary.is_empty() {
        "-".to_string()
    } else {
        fmt3(summary.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["faults", "precision", "recall"]);
        t.row(["1", "1.000", "1.000"]);
        t.row(["10", "0.915", "0.887"]);
        let text = t.to_string();
        assert!(text.contains("# demo"));
        assert!(text.contains("faults"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator and two data rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(["only-one"]);
        t.row(["x", "y", "extra"]);
        let text = t.to_string();
        assert!(text.contains("only-one"));
        assert!(text.contains("extra"));
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.123456), "0.123");
        assert_eq!(fmt3(1.0), "1.000");
    }

    #[test]
    fn fmt_mean_distinguishes_no_data_from_zero() {
        use crate::stats::Summary;
        assert_eq!(fmt_mean(&Summary::of(std::iter::empty())), "-");
        assert_eq!(fmt_mean(&Summary::of([0.0])), "0.000");
        assert_eq!(fmt_mean(&Summary::of([0.25, 0.75])), "0.500");
    }
}
