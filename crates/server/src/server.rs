//! One serving node: the typed front door over a [`ScoutEngine`].
//!
//! A [`ScoutServer`] owns the sessions of the tenants assigned to it and
//! pushes every request through the same funnel:
//!
//! ```text
//!   bytes ──decode──► ServerRequest ──admission──► session ──► ServerResponse ──encode──► bytes
//! ```
//!
//! * **Decode is untrusted**: [`ScoutServer::handle_bytes`] turns any
//!   [`WireError`](scout_fabric::wire::WireError) into a typed
//!   [`ServerError::BadRequest`] response — a hostile payload can never
//!   panic the node (the fuzzer's `Surface::Server` arm enforces this on
//!   the decoder itself).
//! * **Admission before analysis**: ingest traffic crosses the
//!   [`AdmissionController`] first. Over-quota batches are parked or shed
//!   before any session state is touched, so one noisy tenant cannot
//!   consume analysis capacity that belongs to the others.
//! * **Accepted means owned**: a batch answered with `Ingested` or `Queued`
//!   is never silently dropped. Queued batches live in the controller until
//!   [`ScoutServer::tick`] drains them into the session — and for durable
//!   tenants the session is a [`DurableSession`], journaled before applied.
//!
//! The server recreates each tenant's fabric from the universe carried in
//! `OpenSession` and deploys it — the same construction the direct-engine
//! path uses, which is what makes front-door results bit-identical to
//! library results (pinned by `tests/server.rs` and the ported case in
//! `tests/multi_tenant.rs`).

use scout_core::{AnalysisSession, ReportDelta, ScoutEngine, SessionError};
use scout_fabric::wire::{from_bytes, to_bytes};
use scout_fabric::Fabric;
use scout_store::store::{DurableSession, StoreConfig};
use scout_store::DurableEngine;
use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::admission::{Admission, AdmissionConfig, AdmissionController};
use crate::messages::{ServerError, ServerRequest, ServerResponse, TenantId};

/// Where a tenant's session state lives.
enum TenantBackend {
    /// Plain in-memory session: fast, dies with the node.
    Memory(Box<AnalysisSession>),
    /// Journal-backed session: every accepted batch is durable before it is
    /// acknowledged, and a failed-over node can recover it byte-for-byte.
    Durable(Box<DurableSession>),
}

impl TenantBackend {
    fn next_epoch(&self) -> u64 {
        match self {
            TenantBackend::Memory(session) => session.next_epoch(),
            TenantBackend::Durable(session) => session.next_epoch(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            TenantBackend::Memory(session) => session.epoch(),
            TenantBackend::Durable(session) => session.epoch(),
        }
    }

    fn ingest(
        &mut self,
        tenant: TenantId,
        batch: scout_fabric::EventBatch,
    ) -> Result<ReportDelta, ServerError> {
        match self {
            TenantBackend::Memory(session) => session
                .ingest(batch)
                .map_err(|error| ServerError::Session { tenant, error }),
            TenantBackend::Durable(session) => session.ingest(batch).map_err(|error| match error {
                scout_store::store::StoreError::Session(error) => {
                    ServerError::Session { tenant, error }
                }
                other => ServerError::Storage {
                    tenant,
                    reason: other.to_string(),
                },
            }),
        }
    }
}

/// Tuning for one [`ScoutServer`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Quota/queue policy applied in front of every tenant session.
    pub admission: AdmissionConfig,
    /// When set, tenant sessions are durable: each tenant gets a
    /// `tenant_<id>` store directory under this root, opened with
    /// [`ServerConfig::store`].
    pub store_root: Option<PathBuf>,
    /// Store tuning for durable tenants (ignored without a `store_root`).
    pub store: StoreConfig,
}

impl ServerConfig {
    /// In-memory serving with this admission policy.
    pub fn in_memory(admission: AdmissionConfig) -> Self {
        Self {
            admission,
            ..Self::default()
        }
    }

    /// Durable serving: tenant stores live under `root`.
    pub fn durable(admission: AdmissionConfig, root: PathBuf, store: StoreConfig) -> Self {
        Self {
            admission,
            store_root: Some(root),
            store,
        }
    }

    /// The store directory for `tenant` (None for in-memory configs).
    pub fn tenant_dir(&self, tenant: TenantId) -> Option<PathBuf> {
        self.store_root
            .as_ref()
            .map(|root| root.join(format!("tenant_{tenant}")))
    }
}

/// One serving node: typed API, admission control, per-tenant sessions.
///
/// See the [module docs](self) for the request funnel; see
/// [`Cluster`](crate::coordinator::Cluster) for the multi-node layer above.
pub struct ScoutServer {
    engine: ScoutEngine,
    config: ServerConfig,
    admission: AdmissionController,
    tenants: BTreeMap<TenantId, TenantBackend>,
}

impl ScoutServer {
    /// A node serving from `engine` under `config`.
    pub fn new(engine: ScoutEngine, config: ServerConfig) -> Self {
        let admission = AdmissionController::new(config.admission);
        Self {
            engine,
            config,
            admission,
            tenants: BTreeMap::new(),
        }
    }

    /// The engine this node serves from (gauges live here).
    pub fn engine(&self) -> &ScoutEngine {
        &self.engine
    }

    /// This node's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of open tenant sessions on this node.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Whether `tenant` has an open session here.
    pub fn is_open(&self, tenant: TenantId) -> bool {
        self.tenants.contains_key(&tenant)
    }

    /// The open tenants, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// `tenant`'s current ingest queue depth.
    pub fn queue_depth(&self, tenant: TenantId) -> usize {
        self.admission.queue_depth(tenant)
    }

    /// `tenant`'s current admission token balance.
    pub fn quota_tokens(&self, tenant: TenantId) -> u64 {
        self.admission.tokens(tenant)
    }

    /// `tenant`'s current full report, if open.
    pub fn full_report(&self, tenant: TenantId) -> Option<&scout_core::ScoutReport> {
        self.tenants.get(&tenant).map(|backend| match backend {
            TenantBackend::Memory(session) => session.full_report(),
            TenantBackend::Durable(session) => session.full_report(),
        })
    }

    /// Handles one wire-encoded request, always answering with a
    /// wire-encoded response. Undecodable bytes get a typed
    /// [`ServerError::BadRequest`] — never a panic, never silence.
    pub fn handle_bytes(&mut self, bytes: &[u8]) -> Vec<u8> {
        let response = match from_bytes::<ServerRequest>(bytes) {
            Ok(request) => self.handle(request),
            Err(error) => ServerResponse::Error(ServerError::BadRequest {
                reason: format!("undecodable request: {error}"),
            }),
        };
        to_bytes(&response)
    }

    /// Handles one typed request.
    pub fn handle(&mut self, request: ServerRequest) -> ServerResponse {
        match request {
            ServerRequest::OpenSession { tenant, universe } => self.open_session(tenant, universe),
            ServerRequest::Ingest { tenant, batch } => self.ingest(tenant, batch),
            ServerRequest::Resync {
                tenant,
                epoch,
                sync,
            } => self.resync(tenant, epoch, sync),
            ServerRequest::Checkpoint { tenant } => self.checkpoint(tenant),
            ServerRequest::Query { tenant } => self.query(tenant),
            ServerRequest::CloseSession { tenant } => self.close_session(tenant),
        }
    }

    fn open_session(
        &mut self,
        tenant: TenantId,
        universe: scout_policy::PolicyUniverse,
    ) -> ServerResponse {
        if self.tenants.contains_key(&tenant) {
            return ServerResponse::Error(ServerError::TenantExists { tenant });
        }
        // Recreate the tenant's fabric at its pristine deployment — the same
        // construction a direct-engine driver uses, so analysis is
        // bit-identical from the first epoch on.
        let mut fabric = Fabric::new(universe);
        fabric.deploy();
        let backend = match self.config.tenant_dir(tenant) {
            None => TenantBackend::Memory(Box::new(self.engine.open_session(&fabric))),
            Some(dir) => match self.engine.open_durable(&fabric, &dir, self.config.store) {
                Ok(session) => TenantBackend::Durable(Box::new(session)),
                Err(error) => {
                    return ServerResponse::Error(ServerError::Storage {
                        tenant,
                        reason: error.to_string(),
                    })
                }
            },
        };
        let epoch = backend.epoch();
        self.tenants.insert(tenant, backend);
        self.admission.register(tenant);
        ServerResponse::Opened { tenant, epoch }
    }

    fn ingest(&mut self, tenant: TenantId, batch: scout_fabric::EventBatch) -> ServerResponse {
        let Some(backend) = self.tenants.get(&tenant) else {
            return ServerResponse::Error(ServerError::UnknownTenant { tenant });
        };
        // Sequence check *before* admission: a mis-sequenced batch must not
        // poison the queue (drained batches are applied blind). The expected
        // epoch accounts for batches already parked ahead of this one.
        let expected = backend.next_epoch() + self.admission.queue_depth(tenant) as u64;
        if batch.epoch != expected {
            let error = if batch.epoch < expected {
                SessionError::EpochOutOfOrder {
                    expected,
                    got: batch.epoch,
                }
            } else {
                SessionError::EpochGap {
                    resync: scout_core::ResyncRequest {
                        from_epoch: expected,
                        observed_epoch: batch.epoch,
                    },
                }
            };
            return ServerResponse::Error(ServerError::Session { tenant, error });
        }
        match self.admission.offer(tenant, batch) {
            Admission::Admit(batch) => {
                let backend = self.tenants.get_mut(&tenant).expect("checked above");
                match backend.ingest(tenant, batch) {
                    Ok(delta) => {
                        self.engine.gauges().record_admitted();
                        ServerResponse::Ingested { tenant, delta }
                    }
                    Err(error) => {
                        // Not applied: the client must resend this epoch, so
                        // hand the token back — a backend failure must not
                        // double-bill the tenant for the retry.
                        self.admission.refund(tenant);
                        ServerResponse::Error(error)
                    }
                }
            }
            Admission::Queued { depth } => {
                self.engine.gauges().record_queued();
                ServerResponse::Queued {
                    tenant,
                    depth: depth as u64,
                }
            }
            Admission::Shed { retry_hint } => {
                self.engine.gauges().record_shed();
                ServerResponse::Error(ServerError::Shed { tenant, retry_hint })
            }
        }
    }

    fn resync(
        &mut self,
        tenant: TenantId,
        epoch: u64,
        sync: scout_fabric::FullSync,
    ) -> ServerResponse {
        let Some(backend) = self.tenants.get_mut(&tenant) else {
            return ServerResponse::Error(ServerError::UnknownTenant { tenant });
        };
        match backend {
            TenantBackend::Memory(session) => {
                // Anything still parked is pre-gap traffic the resync
                // supersedes; drop it before jumping the session forward.
                for _ in self.admission.deregister(tenant) {
                    self.engine.gauges().record_dequeued();
                }
                self.admission.register(tenant);
                match session.resync(epoch, sync) {
                    Ok(delta) => ServerResponse::Resynced { tenant, delta },
                    Err(error) => ServerResponse::Error(ServerError::Session { tenant, error }),
                }
            }
            TenantBackend::Durable(_) => ServerResponse::Error(ServerError::BadRequest {
                reason: "resync is not supported for durable tenants: the journal must stay \
                         the complete epoch history"
                    .into(),
            }),
        }
    }

    fn checkpoint(&mut self, tenant: TenantId) -> ServerResponse {
        let Some(backend) = self.tenants.get_mut(&tenant) else {
            return ServerResponse::Error(ServerError::UnknownTenant { tenant });
        };
        match backend {
            TenantBackend::Memory(session) => {
                // The snapshot is taken (exercising the full codec) and
                // dropped: an in-memory node has nowhere durable to put it.
                let snapshot = session.checkpoint();
                ServerResponse::Checkpointed {
                    tenant,
                    epoch: snapshot.epoch(),
                }
            }
            TenantBackend::Durable(session) => match session.commit() {
                Ok(()) => ServerResponse::Checkpointed {
                    tenant,
                    epoch: session.committed_epoch(),
                },
                Err(error) => ServerResponse::Error(ServerError::Storage {
                    tenant,
                    reason: error.to_string(),
                }),
            },
        }
    }

    fn query(&self, tenant: TenantId) -> ServerResponse {
        match self.tenants.get(&tenant) {
            None => ServerResponse::Error(ServerError::UnknownTenant { tenant }),
            Some(backend) => {
                let (epoch, report) = match backend {
                    TenantBackend::Memory(session) => {
                        (session.epoch(), session.full_report().clone())
                    }
                    TenantBackend::Durable(session) => {
                        (session.epoch(), session.full_report().clone())
                    }
                };
                ServerResponse::Report {
                    tenant,
                    epoch,
                    report,
                }
            }
        }
    }

    fn close_session(&mut self, tenant: TenantId) -> ServerResponse {
        let Some(backend) = self.tenants.get_mut(&tenant) else {
            return ServerResponse::Error(ServerError::UnknownTenant { tenant });
        };
        // Drain anything still parked, then commit, and only then drop the
        // session: accepted means owned, even at close. Each parked batch
        // leaves the queue only once it is applied, so a failed close keeps
        // the session and every remaining batch owned and retryable — and
        // the `Closed`-only routing cleanup in the Cluster stays truthful.
        while let Some(batch) = self.admission.peek_queued(tenant).cloned() {
            if let Err(error) = backend.ingest(tenant, batch) {
                return ServerResponse::Error(error);
            }
            self.admission.pop_queued(tenant);
            self.engine.gauges().record_dequeued();
        }
        if let TenantBackend::Durable(session) = backend {
            if let Err(error) = session.commit() {
                return ServerResponse::Error(ServerError::Storage {
                    tenant,
                    reason: error.to_string(),
                });
            }
        }
        let epoch = backend.epoch();
        self.tenants.remove(&tenant);
        self.admission.deregister(tenant);
        ServerResponse::Closed { tenant, epoch }
    }

    /// One scheduling round: refill every tenant's tokens and apply queued
    /// batches in FIFO order, returning one `Ingested` (or error) response
    /// per drained batch, in the deterministic drain order.
    pub fn tick(&mut self) -> Vec<ServerResponse> {
        let mut responses = Vec::new();
        for (tenant, batch) in self.admission.tick() {
            self.engine.gauges().record_dequeued();
            let Some(backend) = self.tenants.get_mut(&tenant) else {
                continue; // session closed under a non-empty lane: unreachable
            };
            match backend.ingest(tenant, batch) {
                Ok(delta) => {
                    self.engine.gauges().record_admitted();
                    responses.push(ServerResponse::Ingested { tenant, delta });
                }
                Err(error) => responses.push(ServerResponse::Error(error)),
            }
        }
        responses
    }

    /// Adopts `tenant` by recovering its durable session from this node's
    /// store root — the failover path a
    /// [`Cluster`](crate::coordinator::Cluster) leader drives. The store
    /// directory must exist (written by the previous owner); recovery
    /// verifies every byte and replays the journal tail, landing
    /// bit-identical to the session the dead node held.
    pub fn adopt(&mut self, tenant: TenantId) -> Result<u64, ServerError> {
        if self.tenants.contains_key(&tenant) {
            return Err(ServerError::TenantExists { tenant });
        }
        let Some(dir) = self.config.tenant_dir(tenant) else {
            return Err(ServerError::BadRequest {
                reason: "adopt requires a durable server (no store root configured)".into(),
            });
        };
        let session = self
            .engine
            .recover(&dir, self.config.store)
            .map_err(|error| ServerError::Storage {
                tenant,
                reason: error.to_string(),
            })?;
        let epoch = session.epoch();
        self.tenants
            .insert(tenant, TenantBackend::Durable(Box::new(session)));
        self.admission.register(tenant);
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::OverloadPolicy;
    use scout_fabric::{EventBatch, FabricProbe, FullSync};
    use scout_policy::sample;
    use scout_store::test_dir::TestDir;

    fn server() -> ScoutServer {
        ScoutServer::new(ScoutEngine::new(), ServerConfig::default())
    }

    fn faulty_timeline(epochs: u64) -> (scout_policy::PolicyUniverse, Vec<EventBatch>) {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let mut probe = FabricProbe::new(&fabric);
        let mut batches = Vec::new();
        for epoch in 1..=epochs {
            if epoch % 3 == 1 {
                fabric.evict_tcam(sample::S2, 1, false);
            }
            batches.push(EventBatch::new(epoch, probe.observe(&fabric)));
        }
        (sample::three_tier(), batches)
    }

    #[test]
    fn open_ingest_query_close_matches_direct_engine() {
        let (universe, batches) = faulty_timeline(6);
        let mut srv = server();
        assert_eq!(
            srv.handle(ServerRequest::OpenSession {
                tenant: 1,
                universe: universe.clone(),
            }),
            ServerResponse::Opened {
                tenant: 1,
                epoch: 0
            }
        );

        // Direct path for comparison.
        let engine = ScoutEngine::new();
        let mut fabric = Fabric::new(universe);
        fabric.deploy();
        let mut direct = engine.open_session(&fabric);

        for batch in batches {
            let direct_delta = direct.ingest(batch.clone()).unwrap();
            match srv.handle(ServerRequest::Ingest { tenant: 1, batch }) {
                ServerResponse::Ingested { delta, .. } => assert_eq!(delta, direct_delta),
                other => panic!("expected Ingested, got {other:?}"),
            }
        }
        match srv.handle(ServerRequest::Query { tenant: 1 }) {
            ServerResponse::Report { epoch, report, .. } => {
                assert_eq!(epoch, direct.epoch());
                assert_eq!(&report, direct.full_report());
            }
            other => panic!("expected Report, got {other:?}"),
        }
        assert_eq!(
            srv.handle(ServerRequest::CloseSession { tenant: 1 }),
            ServerResponse::Closed {
                tenant: 1,
                epoch: direct.epoch()
            }
        );
        assert!(!srv.is_open(1));
    }

    #[test]
    fn unknown_and_duplicate_tenants_get_typed_errors() {
        let mut srv = server();
        assert_eq!(
            srv.handle(ServerRequest::Query { tenant: 9 }),
            ServerResponse::Error(ServerError::UnknownTenant { tenant: 9 })
        );
        srv.handle(ServerRequest::OpenSession {
            tenant: 9,
            universe: sample::three_tier(),
        });
        assert_eq!(
            srv.handle(ServerRequest::OpenSession {
                tenant: 9,
                universe: sample::three_tier(),
            }),
            ServerResponse::Error(ServerError::TenantExists { tenant: 9 })
        );
    }

    #[test]
    fn sequence_errors_surface_before_admission() {
        let mut srv = server();
        srv.handle(ServerRequest::OpenSession {
            tenant: 1,
            universe: sample::three_tier(),
        });
        // Epoch 3 with 1 expected: a gap, carrying the resync range.
        match srv.handle(ServerRequest::Ingest {
            tenant: 1,
            batch: EventBatch::empty(3),
        }) {
            ServerResponse::Error(ServerError::Session {
                error: SessionError::EpochGap { resync },
                ..
            }) => {
                assert_eq!((resync.from_epoch, resync.observed_epoch), (1, 3));
            }
            other => panic!("expected EpochGap, got {other:?}"),
        }
        // Nothing was queued or charged.
        assert_eq!(srv.queue_depth(1), 0);
        // A duplicate of an applied epoch is OutOfOrder.
        srv.handle(ServerRequest::Ingest {
            tenant: 1,
            batch: EventBatch::empty(1),
        });
        match srv.handle(ServerRequest::Ingest {
            tenant: 1,
            batch: EventBatch::empty(1),
        }) {
            ServerResponse::Error(ServerError::Session {
                error: SessionError::EpochOutOfOrder { expected, got },
                ..
            }) => assert_eq!((expected, got), (2, 1)),
            other => panic!("expected EpochOutOfOrder, got {other:?}"),
        }
    }

    #[test]
    fn overload_queues_then_sheds_and_ticks_drain_in_order() {
        let admission = AdmissionConfig {
            quota_tokens: 2,
            refill_per_tick: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::Queue,
        };
        let mut srv = ScoutServer::new(ScoutEngine::new(), ServerConfig::in_memory(admission));
        srv.handle(ServerRequest::OpenSession {
            tenant: 1,
            universe: sample::three_tier(),
        });
        let mut verdicts = Vec::new();
        for epoch in 1..=5 {
            verdicts.push(srv.handle(ServerRequest::Ingest {
                tenant: 1,
                batch: EventBatch::empty(epoch),
            }));
        }
        assert!(matches!(verdicts[0], ServerResponse::Ingested { .. }));
        assert!(matches!(verdicts[1], ServerResponse::Ingested { .. }));
        assert_eq!(
            verdicts[2],
            ServerResponse::Queued {
                tenant: 1,
                depth: 1
            }
        );
        assert_eq!(
            verdicts[3],
            ServerResponse::Queued {
                tenant: 1,
                depth: 2
            }
        );
        assert_eq!(
            verdicts[4],
            ServerResponse::Error(ServerError::Shed {
                tenant: 1,
                retry_hint: 3
            })
        );

        // Ticks drain the queue in epoch order; the session stays strict.
        let mut drained = Vec::new();
        for _ in 0..3 {
            drained.extend(srv.tick());
        }
        let epochs: Vec<u64> = drained
            .iter()
            .map(|r| match r {
                ServerResponse::Ingested { delta, .. } => delta.epoch,
                other => panic!("expected Ingested, got {other:?}"),
            })
            .collect();
        assert_eq!(epochs, vec![3, 4]);

        let stats = srv.engine().gauges().snapshot();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.queue_peak, 2);
    }

    #[test]
    fn resync_recovers_a_gapped_session_and_flushes_the_queue() {
        let mut srv = server();
        srv.handle(ServerRequest::OpenSession {
            tenant: 1,
            universe: sample::three_tier(),
        });
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.evict_tcam(sample::S2, 1, false);
        // The probe's epochs 1..=2 never arrive; epoch 3 arrives as a gap.
        match srv.handle(ServerRequest::Ingest {
            tenant: 1,
            batch: EventBatch::empty(3),
        }) {
            ServerResponse::Error(ServerError::Session {
                error: SessionError::EpochGap { .. },
                ..
            }) => {}
            other => panic!("expected gap, got {other:?}"),
        }
        match srv.handle(ServerRequest::Resync {
            tenant: 1,
            epoch: 3,
            sync: FullSync::of(&fabric),
        }) {
            ServerResponse::Resynced { delta, .. } => {
                assert_eq!(delta.epoch, 3);
                assert!(!delta.consistent);
            }
            other => panic!("expected Resynced, got {other:?}"),
        }
        // Post-resync traffic resumes at epoch 4.
        assert!(matches!(
            srv.handle(ServerRequest::Ingest {
                tenant: 1,
                batch: EventBatch::empty(4),
            }),
            ServerResponse::Ingested { .. }
        ));
    }

    #[test]
    fn handle_bytes_rejects_garbage_with_a_typed_response() {
        let mut srv = server();
        let response = srv.handle_bytes(&[0xFF, 0x00, 0x01]);
        match from_bytes::<ServerResponse>(&response).unwrap() {
            ServerResponse::Error(ServerError::BadRequest { reason }) => {
                assert!(reason.contains("undecodable"));
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // And the full wire loop works for a real request.
        let bytes = to_bytes(&ServerRequest::OpenSession {
            tenant: 1,
            universe: sample::three_tier(),
        });
        let response = srv.handle_bytes(&bytes);
        assert_eq!(
            from_bytes::<ServerResponse>(&response).unwrap(),
            ServerResponse::Opened {
                tenant: 1,
                epoch: 0
            }
        );
    }

    #[test]
    fn failed_admit_ingest_refunds_the_quota_token() {
        use scout_store::store::CrashPlan;
        let admission = AdmissionConfig {
            quota_tokens: 2,
            refill_per_tick: 0,
            queue_capacity: 4,
            policy: OverloadPolicy::Queue,
        };
        // Scan crash abort points for one where the open and the first
        // ingest succeed but the second ingest dies in the journal.
        let mut hit = false;
        for abort_after_ops in 0..64 {
            let dir = TestDir::new(&format!("server-refund-{abort_after_ops}"));
            let store = StoreConfig {
                crash_plan: Some(CrashPlan {
                    abort_after_ops,
                    partial_seed: 7,
                }),
                ..StoreConfig::default()
            };
            let config = ServerConfig::durable(admission, dir.path().to_path_buf(), store);
            let mut srv = ScoutServer::new(ScoutEngine::new(), config);
            if !matches!(
                srv.handle(ServerRequest::OpenSession {
                    tenant: 1,
                    universe: sample::three_tier(),
                }),
                ServerResponse::Opened { .. }
            ) {
                continue;
            }
            if !matches!(
                srv.handle(ServerRequest::Ingest {
                    tenant: 1,
                    batch: EventBatch::empty(1),
                }),
                ServerResponse::Ingested { .. }
            ) {
                continue;
            }
            assert_eq!(srv.quota_tokens(1), 1);
            match srv.handle(ServerRequest::Ingest {
                tenant: 1,
                batch: EventBatch::empty(2),
            }) {
                ServerResponse::Error(ServerError::Storage { .. }) => {}
                other => panic!("expected a storage failure, got {other:?}"),
            }
            hit = true;
            // The failed batch was not applied, so its token came back —
            // the retry is billed once, not twice …
            assert_eq!(srv.quota_tokens(1), 1);
            // … and keeps reaching the backend (poisoned store → Storage
            // error), instead of being starved into the queue.
            for _ in 0..3 {
                match srv.handle(ServerRequest::Ingest {
                    tenant: 1,
                    batch: EventBatch::empty(2),
                }) {
                    ServerResponse::Error(ServerError::Storage { .. }) => {}
                    other => panic!("expected a storage failure, got {other:?}"),
                }
                assert_eq!(srv.quota_tokens(1), 1);
                assert_eq!(srv.queue_depth(1), 0);
            }
            break;
        }
        assert!(hit, "no abort point landed on the second ingest");
    }

    #[test]
    fn failed_close_keeps_the_session_and_parked_batches_owned() {
        use scout_store::store::CrashPlan;
        let admission = AdmissionConfig {
            quota_tokens: 1,
            refill_per_tick: 0,
            queue_capacity: 4,
            policy: OverloadPolicy::Queue,
        };
        // Scan crash abort points for one where open + the admitted ingest
        // succeed and the crash fires inside close_session's drain/commit.
        let mut hit = false;
        for abort_after_ops in 0..64 {
            let dir = TestDir::new(&format!("server-close-crash-{abort_after_ops}"));
            let store = StoreConfig {
                crash_plan: Some(CrashPlan {
                    abort_after_ops,
                    partial_seed: 3,
                }),
                ..StoreConfig::default()
            };
            let config = ServerConfig::durable(admission, dir.path().to_path_buf(), store);
            let mut srv = ScoutServer::new(ScoutEngine::new(), config);
            if !matches!(
                srv.handle(ServerRequest::OpenSession {
                    tenant: 1,
                    universe: sample::three_tier(),
                }),
                ServerResponse::Opened { .. }
            ) {
                continue;
            }
            if !matches!(
                srv.handle(ServerRequest::Ingest {
                    tenant: 1,
                    batch: EventBatch::empty(1),
                }),
                ServerResponse::Ingested { .. }
            ) {
                continue;
            }
            // Park two more batches (no durable ops while parked).
            for epoch in 2..=3 {
                assert!(matches!(
                    srv.handle(ServerRequest::Ingest {
                        tenant: 1,
                        batch: EventBatch::empty(epoch),
                    }),
                    ServerResponse::Queued { .. }
                ));
            }
            match srv.handle(ServerRequest::CloseSession { tenant: 1 }) {
                ServerResponse::Closed { .. } => continue, // crash fired earlier/never
                ServerResponse::Error(_) => {}
                other => panic!("unexpected close response: {other:?}"),
            }
            hit = true;
            // The session survives the failed close, still routable …
            assert!(srv.is_open(1));
            let epoch = match srv.handle(ServerRequest::Query { tenant: 1 }) {
                ServerResponse::Report { epoch, .. } => epoch,
                other => panic!("expected Report, got {other:?}"),
            };
            // … and no accepted batch was silently dropped: every epoch in
            // 1..=3 is either applied or still parked.
            assert_eq!(epoch + srv.queue_depth(1) as u64, 3);
            // The shared queue gauge tracks reality instead of leaking.
            assert_eq!(
                srv.engine().gauges().snapshot().queued,
                srv.queue_depth(1) as u64
            );
            break;
        }
        assert!(hit, "no abort point landed inside close_session");
    }

    #[test]
    fn durable_server_journals_and_adopts_bit_identically() {
        let dir = TestDir::new("server-durable");
        let admission = AdmissionConfig::default();
        let config =
            ServerConfig::durable(admission, dir.path().to_path_buf(), StoreConfig::default());
        let (universe, batches) = faulty_timeline(8);

        let engine_a = ScoutEngine::new();
        let mut node_a = ScoutServer::new(engine_a, config.clone());
        node_a.handle(ServerRequest::OpenSession {
            tenant: 5,
            universe: universe.clone(),
        });
        let mut deltas = Vec::new();
        for batch in &batches {
            match node_a.handle(ServerRequest::Ingest {
                tenant: 5,
                batch: batch.clone(),
            }) {
                ServerResponse::Ingested { delta, .. } => deltas.push(delta),
                other => panic!("expected Ingested, got {other:?}"),
            }
        }
        let report_a = node_a.full_report(5).unwrap().clone();
        drop(node_a); // the node dies; the journal survives

        // A different node — different engine — adopts from the store.
        let engine_b = ScoutEngine::new();
        let mut node_b = ScoutServer::new(engine_b, config);
        let epoch = node_b.adopt(5).unwrap();
        assert_eq!(epoch, batches.len() as u64);
        assert_eq!(node_b.full_report(5), Some(&report_a));

        // The adopted session keeps ingesting where the dead one stopped.
        assert!(matches!(
            node_b.handle(ServerRequest::Ingest {
                tenant: 5,
                batch: EventBatch::empty(batches.len() as u64 + 1),
            }),
            ServerResponse::Ingested { .. }
        ));
    }
}
