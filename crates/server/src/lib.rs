//! # scout-server
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the repo
//! root is the crate-by-crate tour showing where this crate sits in the
//! pipeline.
//!
//! The **serving layer**: everything between a million untrusted tenants
//! and the analysis engine.
//!
//! * [`messages`] — the typed [`ServerRequest`]/[`ServerResponse`] wire API
//!   (canonical `scout-fabric` codec; one more fuzzed surface);
//! * [`admission`] — per-tenant token quotas and bounded FIFO queues with
//!   an explicit shed-or-queue overload policy;
//! * [`server`] — one serving node: decode → admission → session → respond,
//!   over in-memory or journal-backed (`scout-store`) sessions;
//! * [`membership`] / [`leader`] / [`coordinator`] — the simulated cluster:
//!   heartbeat death detection, lowest-alive-id leadership, and failover by
//!   journal replay on a surviving node.
//!
//! The layer's contract, pinned by the enforced root suite
//! `tests/server.rs`: front-door results are **bit-identical** to direct
//! single-threaded engine replay — per tenant, across server thread counts,
//! across node counts, and across a mid-soak leader + owner kill.
//!
//! # Example
//!
//! ```
//! use scout_core::ScoutEngine;
//! use scout_fabric::EventBatch;
//! use scout_policy::sample;
//! use scout_server::{ScoutServer, ServerConfig, ServerRequest, ServerResponse};
//!
//! let mut server = ScoutServer::new(ScoutEngine::new(), ServerConfig::default());
//! let opened = server.handle(ServerRequest::OpenSession {
//!     tenant: 7,
//!     universe: sample::three_tier(),
//! });
//! assert_eq!(opened, ServerResponse::Opened { tenant: 7, epoch: 0 });
//!
//! match server.handle(ServerRequest::Ingest {
//!     tenant: 7,
//!     batch: EventBatch::empty(1),
//! }) {
//!     ServerResponse::Ingested { delta, .. } => assert!(delta.consistent),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod coordinator;
pub mod leader;
pub mod membership;
pub mod messages;
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionController, OverloadPolicy};
pub use coordinator::{Cluster, ClusterConfig, TickReport};
pub use leader::{elect, plan_reassignment, Reassignment};
pub use membership::{Membership, NodeId};
pub use messages::{ServerError, ServerRequest, ServerResponse, TenantId};
pub use server::{ScoutServer, ServerConfig};
