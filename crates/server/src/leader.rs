//! Deterministic leader election and failover planning.
//!
//! Because [`Membership`](crate::membership::Membership) is a pure function
//! of the heartbeat history, every node that observes the same history can
//! run the same election locally: **the lowest alive node id leads**. No
//! ballots, no terms — the simulation's clock is synchronous, so the alive
//! set *is* the consensus. What the leader decides (which survivor adopts
//! which orphaned tenant) is likewise a pure function of the alive set and
//! the orphan list, so a re-run of the same failure schedule produces the
//! same plan — the property that makes the cluster's node-count determinism
//! testable at all.

use std::collections::BTreeSet;

use crate::membership::NodeId;
use crate::messages::TenantId;

/// The lowest alive node leads; an empty cluster has no leader.
pub fn elect(alive: &BTreeSet<NodeId>) -> Option<NodeId> {
    alive.iter().next().copied()
}

/// One session move in a failover plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reassignment {
    /// The orphaned tenant.
    pub tenant: TenantId,
    /// The node that owned it (now dead).
    pub from: NodeId,
    /// The survivor that must adopt it.
    pub to: NodeId,
}

/// Plans the adoption of `orphans` (tenant, dead-owner pairs) across the
/// `alive` survivors: tenants in ascending order, spread round-robin over
/// the ascending survivor list. Pure and deterministic — same inputs, same
/// plan, on every node that runs it. Returns an empty plan when no one is
/// alive to adopt.
pub fn plan_reassignment(
    orphans: &[(TenantId, NodeId)],
    alive: &BTreeSet<NodeId>,
) -> Vec<Reassignment> {
    let survivors: Vec<NodeId> = alive.iter().copied().collect();
    if survivors.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<(TenantId, NodeId)> = orphans.to_vec();
    sorted.sort_unstable();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, (tenant, from))| Reassignment {
            tenant,
            from,
            to: survivors[i % survivors.len()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_alive_node_leads() {
        assert_eq!(elect(&BTreeSet::new()), None);
        assert_eq!(elect(&BTreeSet::from([4, 2, 9])), Some(2));
    }

    #[test]
    fn reassignment_is_deterministic_and_covers_every_orphan() {
        let alive = BTreeSet::from([2, 5]);
        let orphans = vec![(30, 1), (10, 1), (20, 3)];
        let plan = plan_reassignment(&orphans, &alive);
        assert_eq!(plan, plan_reassignment(&orphans, &alive));
        assert_eq!(
            plan,
            vec![
                Reassignment {
                    tenant: 10,
                    from: 1,
                    to: 2
                },
                Reassignment {
                    tenant: 20,
                    from: 3,
                    to: 5
                },
                Reassignment {
                    tenant: 30,
                    from: 1,
                    to: 2
                },
            ]
        );
        assert!(plan_reassignment(&orphans, &BTreeSet::new()).is_empty());
    }
}
