//! The simulated multi-node cluster: N serving nodes, one shared store
//! root, heartbeat-driven death detection, leader-driven failover.
//!
//! The design follows the cathedral pattern — a distributed scheduler over
//! a replicated, hash-chained log with replay-driven recovery:
//!
//! * every node is a full [`ScoutServer`] with its **own engine** (analysis
//!   results are engine-independent, which is what node-count determinism
//!   rests on);
//! * every tenant session is **durable**, journaled under
//!   `<root>/tenant_<id>` before any batch is acknowledged;
//! * a [`Membership`] view turns missed heartbeats into death verdicts, the
//!   [`leader`](crate::leader) module turns the alive set into a leader and
//!   a reassignment plan, and [`ScoutServer::adopt`] replays the orphan's
//!   journal on the survivor — landing **bit-identical** to the session the
//!   dead node held (`tests/server.rs` kills the leader and an owner
//!   mid-soak and pins the final reports against an uninterrupted run).
//!
//! Failure timeline for one kill:
//!
//! ```text
//!   kill_node(n)      tick()+1 … tick()+T        tick()+T+1
//!   ────────────►  heartbeats stop  ────────►  membership declares n dead
//!                                              leader plans reassignment
//!                                              survivors adopt ───────► tenants
//!                                              (journal replay)         serve again
//! ```
//!
//! Between the kill and the adoption, requests routed to the dead owner are
//! shed with `retry_hint: 1` — the same typed backpressure an overloaded
//! tenant sees, so clients need one retry loop, not two.

use scout_core::ScoutEngine;
use scout_fabric::wire::{from_bytes, to_bytes};
use scout_store::store::StoreConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::admission::AdmissionConfig;
use crate::leader::{elect, plan_reassignment, Reassignment};
use crate::membership::{Membership, NodeId};
use crate::messages::{ServerError, ServerRequest, ServerResponse, TenantId};
use crate::server::{ScoutServer, ServerConfig};

/// Tuning for a [`Cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of serving nodes.
    pub nodes: u64,
    /// Missed ticks tolerated before a node is declared dead.
    pub heartbeat_timeout: u64,
    /// Admission policy applied on every node.
    pub admission: AdmissionConfig,
    /// Store tuning for the per-tenant journals.
    pub store: StoreConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 3,
            heartbeat_timeout: 2,
            admission: AdmissionConfig::default(),
            store: StoreConfig::default(),
        }
    }
}

/// What one [`Cluster::tick`] did.
#[derive(Debug, Default)]
pub struct TickReport {
    /// Nodes newly declared dead this tick.
    pub newly_dead: Vec<NodeId>,
    /// Failover moves executed this tick (in plan order).
    pub failed_over: Vec<Reassignment>,
    /// Responses for queued batches drained on any node this tick,
    /// in node order then drain order.
    pub drained: Vec<ServerResponse>,
}

/// N simulated serving nodes behind one routing coordinator.
///
/// See the [module docs](self) for the failure model.
pub struct Cluster {
    config: ClusterConfig,
    root: PathBuf,
    membership: Membership,
    /// The live nodes. A killed node is removed outright — its engine,
    /// sessions and queues die with it; only the journals under `root`
    /// survive.
    nodes: BTreeMap<NodeId, ScoutServer>,
    /// tenant → owning node. Updated only by open and failover, so a
    /// dead owner stays visible here until the leader reassigns.
    assignment: BTreeMap<TenantId, NodeId>,
    leader: Option<NodeId>,
}

impl Cluster {
    /// A cluster of `config.nodes` fresh nodes journaling under `root`.
    pub fn new(root: &Path, config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        let mut membership = Membership::new(config.heartbeat_timeout);
        let mut nodes = BTreeMap::new();
        for node in 0..config.nodes {
            membership.join(node);
            let server_config =
                ServerConfig::durable(config.admission, root.to_path_buf(), config.store);
            nodes.insert(node, ScoutServer::new(ScoutEngine::new(), server_config));
        }
        let leader = elect(&membership.alive());
        Self {
            config,
            root: root.to_path_buf(),
            membership,
            nodes,
            assignment: BTreeMap::new(),
            leader,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The current leader (None once every node is dead).
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// The node currently assigned to `tenant`.
    pub fn owner(&self, tenant: TenantId) -> Option<NodeId> {
        self.assignment.get(&tenant).copied()
    }

    /// The alive node ids, ascending.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Read access to a live node's server (None for dead/unknown nodes).
    pub fn node(&self, node: NodeId) -> Option<&ScoutServer> {
        self.nodes.get(&node)
    }

    /// Routes one typed request to the owning node.
    ///
    /// `OpenSession` picks the owner deterministically: the least-loaded
    /// alive node, lowest id winning ties. Requests — opens included — for
    /// tenants whose owner is dead but not yet failed over are shed with
    /// `retry_hint: 1`: re-placing a tenant while failover is pending would
    /// strand its durable session (the replacement open collides with the
    /// on-disk journal, and the orphan scan keys off dead owners).
    pub fn handle(&mut self, request: ServerRequest) -> ServerResponse {
        let tenant = request.tenant();
        let node = match &request {
            ServerRequest::OpenSession { .. } => {
                if let Some(&owner) = self.assignment.get(&tenant) {
                    if self.nodes.contains_key(&owner) {
                        return ServerResponse::Error(ServerError::TenantExists { tenant });
                    }
                    // Dead owner, failover pending: shed the retry and let
                    // the leader fail the session over intact.
                    return ServerResponse::Error(ServerError::Shed {
                        tenant,
                        retry_hint: 1,
                    });
                }
                let Some(node) = self.least_loaded_node() else {
                    return ServerResponse::Error(ServerError::Shed {
                        tenant,
                        retry_hint: 1,
                    });
                };
                node
            }
            _ => match self.assignment.get(&tenant) {
                None => return ServerResponse::Error(ServerError::UnknownTenant { tenant }),
                Some(&owner) => {
                    if !self.nodes.contains_key(&owner) {
                        // Dead owner, failover pending: typed backpressure.
                        return ServerResponse::Error(ServerError::Shed {
                            tenant,
                            retry_hint: 1,
                        });
                    }
                    owner
                }
            },
        };
        let response = self
            .nodes
            .get_mut(&node)
            .expect("routed to a live node")
            .handle(request);
        // Routing state mutates only on success, in both directions: a
        // failed open must not leave the tenant pointing at a node with no
        // session, and only a confirmed close releases the tenant.
        match &response {
            ServerResponse::Opened { .. } => {
                self.assignment.insert(tenant, node);
            }
            ServerResponse::Closed { .. } => {
                self.assignment.remove(&tenant);
            }
            _ => {}
        }
        response
    }

    /// Routes one wire-encoded request, answering in wire form — the
    /// cluster-level twin of [`ScoutServer::handle_bytes`].
    pub fn handle_bytes(&mut self, bytes: &[u8]) -> Vec<u8> {
        match from_bytes::<ServerRequest>(bytes) {
            Ok(request) => to_bytes(&self.handle(request)),
            Err(error) => to_bytes(&ServerResponse::Error(ServerError::BadRequest {
                reason: format!("undecodable request: {error}"),
            })),
        }
    }

    /// Kills `node` instantly: its engine, sessions and queues are gone,
    /// its heartbeats stop, and its tenants' journals wait under the store
    /// root for failover. Killing an already-dead node is a no-op.
    pub fn kill_node(&mut self, node: NodeId) {
        self.nodes.remove(&node);
        // Routing state intentionally keeps pointing at the dead node until
        // membership catches up — that window is part of the failure model.
    }

    /// One coordinator round:
    ///
    /// 1. every live node heartbeats;
    /// 2. the membership clock advances, possibly declaring deaths;
    /// 3. the (possibly new) leader plans reassignment of orphaned tenants
    ///    and the survivors adopt them by journal replay;
    /// 4. every live node runs one admission tick, draining queues.
    pub fn tick(&mut self) -> TickReport {
        let mut report = TickReport::default();
        for &node in self.nodes.keys() {
            self.membership.heartbeat(node);
        }
        report.newly_dead = self.membership.tick();
        let alive = self.membership.alive();
        self.leader = elect(&alive);

        // The leader reassigns every tenant whose owner is gone — not just
        // this tick's casualties, so a leaderless interregnum (all nodes
        // briefly dead-ish) heals as soon as anyone can lead again.
        if self.leader.is_some() {
            let orphans: Vec<(TenantId, NodeId)> = self
                .assignment
                .iter()
                .filter(|(_, owner)| !self.nodes.contains_key(owner))
                .map(|(&tenant, &owner)| (tenant, owner))
                .collect();
            for reassignment in plan_reassignment(&orphans, &alive) {
                let Some(server) = self.nodes.get_mut(&reassignment.to) else {
                    continue;
                };
                match server.adopt(reassignment.tenant) {
                    Ok(_) => {
                        self.assignment.insert(reassignment.tenant, reassignment.to);
                        report.failed_over.push(reassignment);
                    }
                    Err(error) => {
                        // Surfaced, not swallowed: a failed adoption leaves
                        // the tenant orphaned for the next tick.
                        report.drained.push(ServerResponse::Error(error));
                    }
                }
            }
        }

        for server in self.nodes.values_mut() {
            report.drained.extend(server.tick());
        }
        report
    }
}

impl Cluster {
    /// The alive node with the fewest owned tenants, lowest id on ties —
    /// deterministic placement for `OpenSession`.
    fn least_loaded_node(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .map(|(&node, server)| (server.tenant_count(), node))
            .min()
            .map(|(_, node)| node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_fabric::{EventBatch, Fabric, FabricProbe};
    use scout_policy::sample;
    use scout_store::test_dir::TestDir;

    fn timeline(epochs: u64) -> (scout_policy::PolicyUniverse, Vec<EventBatch>) {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let mut probe = FabricProbe::new(&fabric);
        let mut batches = Vec::new();
        for epoch in 1..=epochs {
            if epoch % 2 == 1 {
                fabric.evict_tcam(sample::S2, 1, false);
            }
            batches.push(EventBatch::new(epoch, probe.observe(&fabric)));
        }
        (sample::three_tier(), batches)
    }

    #[test]
    fn opens_spread_across_nodes_deterministically() {
        let dir = TestDir::new("cluster-spread");
        let mut cluster = Cluster::new(dir.path(), ClusterConfig::default());
        for tenant in 0..6 {
            match cluster.handle(ServerRequest::OpenSession {
                tenant,
                universe: sample::three_tier(),
            }) {
                ServerResponse::Opened { .. } => {}
                other => panic!("open failed: {other:?}"),
            }
        }
        // 6 tenants over 3 nodes, least-loaded placement: 2 each.
        for node in 0..3 {
            assert_eq!(cluster.node(node).unwrap().tenant_count(), 2);
        }
        assert_eq!(cluster.leader(), Some(0));
    }

    #[test]
    fn killing_an_owner_shed_then_failover_then_serve() {
        let dir = TestDir::new("cluster-failover");
        let config = ClusterConfig {
            nodes: 3,
            heartbeat_timeout: 1,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(dir.path(), config);
        let (universe, batches) = timeline(6);
        cluster.handle(ServerRequest::OpenSession {
            tenant: 42,
            universe,
        });
        let owner = cluster.owner(42).unwrap();
        for batch in &batches[..3] {
            match cluster.handle(ServerRequest::Ingest {
                tenant: 42,
                batch: batch.clone(),
            }) {
                ServerResponse::Ingested { .. } => {}
                other => panic!("ingest failed: {other:?}"),
            }
        }

        cluster.kill_node(owner);
        // The dead-owner window: typed backpressure, not a hang or a panic.
        assert_eq!(
            cluster.handle(ServerRequest::Query { tenant: 42 }),
            ServerResponse::Error(ServerError::Shed {
                tenant: 42,
                retry_hint: 1
            })
        );

        // Tick until membership catches up and the leader reassigns.
        let mut moved = Vec::new();
        for _ in 0..4 {
            moved.extend(cluster.tick().failed_over);
        }
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].tenant, 42);
        assert_ne!(moved[0].to, owner);
        assert_eq!(cluster.owner(42), Some(moved[0].to));

        // The survivor serves the tail as if nothing happened.
        for batch in &batches[3..] {
            match cluster.handle(ServerRequest::Ingest {
                tenant: 42,
                batch: batch.clone(),
            }) {
                ServerResponse::Ingested { .. } => {}
                other => panic!("post-failover ingest failed: {other:?}"),
            }
        }

        // And if the leader was the casualty, a new one was elected.
        assert!(cluster.leader().is_some());
        assert_ne!(cluster.leader(), Some(owner));
    }

    #[test]
    fn reopen_during_failover_window_is_shed_not_replaced() {
        let dir = TestDir::new("cluster-reopen-window");
        let config = ClusterConfig {
            nodes: 3,
            heartbeat_timeout: 1,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(dir.path(), config);
        let (universe, batches) = timeline(6);
        cluster.handle(ServerRequest::OpenSession {
            tenant: 42,
            universe: universe.clone(),
        });
        let owner = cluster.owner(42).unwrap();
        for batch in &batches[..3] {
            assert!(matches!(
                cluster.handle(ServerRequest::Ingest {
                    tenant: 42,
                    batch: batch.clone(),
                }),
                ServerResponse::Ingested { .. }
            ));
        }
        cluster.kill_node(owner);

        // A client retrying OpenSession inside the shed-and-retry window
        // must be shed, not re-placed: re-placing would clobber the
        // dead-owner assignment the orphan scan keys off.
        assert_eq!(
            cluster.handle(ServerRequest::OpenSession {
                tenant: 42,
                universe
            }),
            ServerResponse::Error(ServerError::Shed {
                tenant: 42,
                retry_hint: 1
            })
        );
        assert_eq!(cluster.owner(42), Some(owner));

        // Failover still happens, and the survivor serves the tail.
        let mut moved = Vec::new();
        for _ in 0..6 {
            moved.extend(cluster.tick().failed_over);
        }
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].tenant, 42);
        assert_ne!(moved[0].to, owner);
        for batch in &batches[3..] {
            assert!(matches!(
                cluster.handle(ServerRequest::Ingest {
                    tenant: 42,
                    batch: batch.clone(),
                }),
                ServerResponse::Ingested { .. }
            ));
        }
    }

    #[test]
    fn failed_open_leaves_no_routing_state() {
        let dir = TestDir::new("cluster-open-fail");
        let mut cluster = Cluster::new(dir.path(), ClusterConfig::default());
        cluster.handle(ServerRequest::OpenSession {
            tenant: 7,
            universe: sample::three_tier(),
        });
        assert!(matches!(
            cluster.handle(ServerRequest::CloseSession { tenant: 7 }),
            ServerResponse::Closed { .. }
        ));
        assert_eq!(cluster.owner(7), None);

        // The closed tenant's journal is still under the store root, so a
        // second open fails in storage (open refuses to clobber a store) …
        match cluster.handle(ServerRequest::OpenSession {
            tenant: 7,
            universe: sample::three_tier(),
        }) {
            ServerResponse::Error(ServerError::Storage { .. }) => {}
            other => panic!("expected a storage failure, got {other:?}"),
        }
        // … and must not leave the tenant assigned to a node that has no
        // session for it: no assignment, no phantom owner, no wedge.
        assert_eq!(cluster.owner(7), None);
        assert_eq!(
            cluster.handle(ServerRequest::Query { tenant: 7 }),
            ServerResponse::Error(ServerError::UnknownTenant { tenant: 7 })
        );
    }

    #[test]
    fn all_nodes_dead_sheds_opens_until_none_lead() {
        let dir = TestDir::new("cluster-dead");
        let config = ClusterConfig {
            nodes: 2,
            heartbeat_timeout: 0,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(dir.path(), config);
        cluster.kill_node(0);
        cluster.kill_node(1);
        let mut newly_dead = Vec::new();
        for _ in 0..3 {
            newly_dead.extend(cluster.tick().newly_dead);
        }
        assert_eq!(newly_dead, vec![0, 1]);
        assert_eq!(cluster.leader(), None);
        assert_eq!(
            cluster.handle(ServerRequest::OpenSession {
                tenant: 1,
                universe: sample::three_tier(),
            }),
            ServerResponse::Error(ServerError::Shed {
                tenant: 1,
                retry_hint: 1
            })
        );
    }
}
