//! Per-tenant admission control: token quotas, bounded FIFO queues, and an
//! explicit shed-or-queue overload policy.
//!
//! The controller is **pure bookkeeping** — it never touches an engine or a
//! session, which is what makes it property-testable in isolation (see the
//! tests at the bottom). The server composes it in front of the ingest path:
//!
//! ```text
//!            ┌───────────────────────────────────────────────┐
//!            │                 offer(tenant, batch)          │
//!            └───────────────────────────────────────────────┘
//!                                  │
//!                tokens > 0 and queue empty?
//!                  │ yes                     │ no
//!                  ▼                         ▼
//!             Admit(batch)          queue has room (Queue policy)?
//!         (caller ingests now)        │ yes              │ no
//!                                     ▼                  ▼
//!                              Queued { depth }   Shed { retry_hint }
//!                            (drained by tick())  (batch NOT accepted)
//! ```
//!
//! Two invariants the property tests pin:
//!
//! * **Order**: a tenant's batches are applied in offer order. That is why
//!   `Admit` requires an *empty* queue — once anything is parked, later
//!   arrivals park behind it even if tokens are available, otherwise a
//!   drained queue would replay epochs behind an already-applied one.
//! * **Shed is stateless**: a shed offer changes nothing — not the queue,
//!   not the tokens — so a retrying client observes the same controller it
//!   first hit.
//!
//! Token accounting is saturating `u64` arithmetic: a quota can never go
//! negative, and a refill can never exceed the configured burst capacity.

use scout_fabric::EventBatch;
use std::collections::{BTreeMap, VecDeque};

use crate::messages::TenantId;

/// What to do with a batch that arrives while the tenant is out of tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Park it in the tenant's bounded queue; shed only when the queue is
    /// full. The default.
    #[default]
    Queue,
    /// Shed immediately; the queue is never used.
    Shed,
}

/// Tuning for one [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Token-bucket burst capacity (and the opening balance of a fresh
    /// lane). One batch costs one token.
    pub quota_tokens: u64,
    /// Tokens granted back per [`AdmissionController::tick`], capped at
    /// `quota_tokens`.
    pub refill_per_tick: u64,
    /// Bounded per-tenant queue length under the [`OverloadPolicy::Queue`]
    /// policy.
    pub queue_capacity: usize,
    /// What happens when the tokens run out.
    pub policy: OverloadPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            quota_tokens: 8,
            refill_per_tick: 4,
            queue_capacity: 16,
            policy: OverloadPolicy::Queue,
        }
    }
}

/// The controller's verdict on one offered batch.
#[derive(Debug, PartialEq)]
pub enum Admission {
    /// Under quota: the batch is handed back for immediate application.
    Admit(EventBatch),
    /// Over quota but within the queue bound: the controller now owns the
    /// batch and will release it from [`AdmissionController::tick`].
    Queued {
        /// The tenant's queue depth including this batch.
        depth: usize,
    },
    /// Refused. The controller owns nothing; the caller must resend after
    /// roughly `retry_hint` ticks.
    Shed {
        /// Ticks until the backlog can have drained at the refill rate.
        retry_hint: u64,
    },
}

/// One tenant's admission lane.
#[derive(Debug)]
struct Lane {
    tokens: u64,
    queue: VecDeque<EventBatch>,
}

/// Token quotas and bounded queues for every registered tenant.
///
/// See the [module docs](self) for the admission state machine.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    lanes: BTreeMap<TenantId, Lane>,
}

impl AdmissionController {
    /// A controller with no registered tenants.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            lanes: BTreeMap::new(),
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Opens a lane for `tenant` with a full token bucket. Idempotent: an
    /// existing lane (and anything queued in it) is left untouched.
    pub fn register(&mut self, tenant: TenantId) {
        self.lanes.entry(tenant).or_insert_with(|| Lane {
            tokens: self.config.quota_tokens,
            queue: VecDeque::new(),
        });
    }

    /// Drops `tenant`'s lane, returning any still-queued batches so the
    /// caller can account for them (a closing server drains them into the
    /// session before answering; a dying one loses only what was never
    /// durably accepted).
    pub fn deregister(&mut self, tenant: TenantId) -> Vec<EventBatch> {
        self.lanes
            .remove(&tenant)
            .map(|lane| lane.queue.into())
            .unwrap_or_default()
    }

    /// Whether `tenant` has a lane.
    pub fn is_registered(&self, tenant: TenantId) -> bool {
        self.lanes.contains_key(&tenant)
    }

    /// `tenant`'s current token balance (0 for unknown tenants).
    pub fn tokens(&self, tenant: TenantId) -> u64 {
        self.lanes.get(&tenant).map_or(0, |lane| lane.tokens)
    }

    /// `tenant`'s current queue depth (0 for unknown tenants).
    pub fn queue_depth(&self, tenant: TenantId) -> usize {
        self.lanes.get(&tenant).map_or(0, |lane| lane.queue.len())
    }

    /// The batch at the head of `tenant`'s queue, if any.
    pub fn peek_queued(&self, tenant: TenantId) -> Option<&EventBatch> {
        self.lanes.get(&tenant).and_then(|lane| lane.queue.front())
    }

    /// Pops the head of `tenant`'s queue without a token charge — the close
    /// path's drain, where quota no longer matters but the pop must happen
    /// only after the batch was durably applied.
    pub fn pop_queued(&mut self, tenant: TenantId) -> Option<EventBatch> {
        self.lanes
            .get_mut(&tenant)
            .and_then(|lane| lane.queue.pop_front())
    }

    /// Returns one token to `tenant`'s lane (capped at the burst capacity).
    /// The server refunds an admitted batch its backend failed to apply:
    /// the batch was not consumed, the client must resend the same epoch,
    /// and a storage-stressed tenant must not be double-billed for it.
    pub fn refund(&mut self, tenant: TenantId) {
        if let Some(lane) = self.lanes.get_mut(&tenant) {
            lane.tokens = lane.tokens.saturating_add(1).min(self.config.quota_tokens);
        }
    }

    /// Batches parked across all lanes.
    pub fn total_queued(&self) -> usize {
        self.lanes.values().map(|lane| lane.queue.len()).sum()
    }

    /// Offers one batch for `tenant`. The tenant must be registered — an
    /// unknown tenant is shed with a zero hint (the server layers its own
    /// `UnknownTenant` error above this).
    pub fn offer(&mut self, tenant: TenantId, batch: EventBatch) -> Admission {
        let config = self.config;
        let Some(lane) = self.lanes.get_mut(&tenant) else {
            return Admission::Shed { retry_hint: 0 };
        };
        if lane.tokens > 0 && lane.queue.is_empty() {
            lane.tokens -= 1;
            return Admission::Admit(batch);
        }
        if config.policy == OverloadPolicy::Queue && lane.queue.len() < config.queue_capacity {
            lane.queue.push_back(batch);
            return Admission::Queued {
                depth: lane.queue.len(),
            };
        }
        Admission::Shed {
            retry_hint: Self::retry_hint(lane.queue.len(), &config),
        }
    }

    /// How many ticks until a lane with `backlog` queued batches can have
    /// drained at the refill rate — what a shed client is told.
    fn retry_hint(backlog: usize, config: &AdmissionConfig) -> u64 {
        let refill = config.refill_per_tick.max(1);
        (backlog as u64 + 1).div_ceil(refill)
    }

    /// One scheduling round: refill every lane's tokens (capped at the
    /// burst capacity), then drain queued batches in FIFO order while
    /// tokens last. Lanes drain in ascending tenant order, so the whole
    /// controller is deterministic given the same offer history.
    pub fn tick(&mut self) -> Vec<(TenantId, EventBatch)> {
        let mut released = Vec::new();
        for (&tenant, lane) in &mut self.lanes {
            lane.tokens = lane
                .tokens
                .saturating_add(self.config.refill_per_tick)
                .min(self.config.quota_tokens);
            while lane.tokens > 0 {
                let Some(batch) = lane.queue.pop_front() else {
                    break;
                };
                lane.tokens -= 1;
                released.push((tenant, batch));
            }
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn batch(epoch: u64) -> EventBatch {
        EventBatch::empty(epoch)
    }

    #[test]
    fn admits_until_quota_then_queues_then_sheds() {
        let config = AdmissionConfig {
            quota_tokens: 2,
            refill_per_tick: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::Queue,
        };
        let mut ctl = AdmissionController::new(config);
        ctl.register(7);

        assert!(matches!(ctl.offer(7, batch(1)), Admission::Admit(_)));
        assert!(matches!(ctl.offer(7, batch(2)), Admission::Admit(_)));
        assert_eq!(ctl.offer(7, batch(3)), Admission::Queued { depth: 1 });
        assert_eq!(ctl.offer(7, batch(4)), Admission::Queued { depth: 2 });
        let shed = ctl.offer(7, batch(5));
        assert_eq!(shed, Admission::Shed { retry_hint: 3 });
        assert_eq!(ctl.tokens(7), 0);
        assert_eq!(ctl.queue_depth(7), 2);

        // One tick refills one token and releases the head of the queue.
        let released = ctl.tick();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1.epoch, 3);
    }

    #[test]
    fn shed_policy_never_queues() {
        let config = AdmissionConfig {
            quota_tokens: 1,
            refill_per_tick: 1,
            queue_capacity: 16,
            policy: OverloadPolicy::Shed,
        };
        let mut ctl = AdmissionController::new(config);
        ctl.register(1);
        assert!(matches!(ctl.offer(1, batch(1)), Admission::Admit(_)));
        assert!(matches!(ctl.offer(1, batch(2)), Admission::Shed { .. }));
        assert_eq!(ctl.queue_depth(1), 0);
    }

    #[test]
    fn unknown_tenants_are_shed_without_side_effects() {
        let mut ctl = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(ctl.offer(9, batch(1)), Admission::Shed { retry_hint: 0 });
        assert!(!ctl.is_registered(9));
        assert_eq!(ctl.total_queued(), 0);
    }

    #[test]
    fn deregister_returns_the_parked_batches_in_order() {
        let config = AdmissionConfig {
            quota_tokens: 0,
            ..AdmissionConfig::default()
        };
        let mut ctl = AdmissionController::new(config);
        ctl.register(3);
        for epoch in 1..=4 {
            assert!(matches!(
                ctl.offer(3, batch(epoch)),
                Admission::Queued { .. }
            ));
        }
        let parked = ctl.deregister(3);
        assert_eq!(
            parked.iter().map(|b| b.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert!(!ctl.is_registered(3));
    }

    /// Property: over a long random interleaving of offers and ticks,
    /// token balances never exceed the burst capacity (they are unsigned,
    /// so "never negative" is a type-level fact — the interesting bound is
    /// the cap), queue depths never exceed the configured capacity, and
    /// the number of released-plus-admitted batches never exceeds the
    /// number accepted.
    #[test]
    fn quota_accounting_stays_within_bounds_under_random_interleaving() {
        let mut rng = StdRng::seed_from_u64(0x5EED_AD31);
        for round in 0..20 {
            let config = AdmissionConfig {
                quota_tokens: rng.gen_range(1..6),
                refill_per_tick: rng.gen_range(1..4),
                queue_capacity: rng.gen_range(1..5) as usize,
                policy: OverloadPolicy::Queue,
            };
            let mut ctl = AdmissionController::new(config);
            let tenants: Vec<TenantId> = (0..rng.gen_range(1..5)).collect();
            for &t in &tenants {
                ctl.register(t);
            }
            let mut accepted = 0u64;
            let mut applied = 0u64;
            let mut epoch = 0u64;
            for _ in 0..400 {
                if rng.gen_range(0..4) == 0 {
                    applied += ctl.tick().len() as u64;
                } else {
                    epoch += 1;
                    let tenant = tenants[rng.gen_range(0..tenants.len() as u64) as usize];
                    match ctl.offer(tenant, batch(epoch)) {
                        Admission::Admit(_) => {
                            accepted += 1;
                            applied += 1;
                        }
                        Admission::Queued { depth } => {
                            accepted += 1;
                            assert!(depth <= config.queue_capacity, "round {round}");
                        }
                        Admission::Shed { .. } => {}
                    }
                }
                for &t in &tenants {
                    assert!(ctl.tokens(t) <= config.quota_tokens, "round {round}");
                    assert!(ctl.queue_depth(t) <= config.queue_capacity, "round {round}");
                }
            }
            applied += ctl.tick().len() as u64;
            assert!(
                applied <= accepted,
                "round {round}: released more than accepted"
            );
            assert_eq!(
                accepted - applied,
                ctl.total_queued() as u64,
                "round {round}: accepted batches neither applied nor parked"
            );
        }
    }

    /// Property: a shed offer is a pure refusal — tokens, queue contents
    /// and queue order are exactly what they were before the offer.
    #[test]
    fn shed_leaves_all_lane_state_untouched() {
        let mut rng = StdRng::seed_from_u64(0x5EED_5EED);
        let config = AdmissionConfig {
            quota_tokens: 2,
            refill_per_tick: 1,
            queue_capacity: 3,
            policy: OverloadPolicy::Queue,
        };
        let mut ctl = AdmissionController::new(config);
        ctl.register(1);
        // Exhaust tokens and fill the queue.
        let mut epoch = 0;
        loop {
            epoch += 1;
            if matches!(ctl.offer(1, batch(epoch)), Admission::Shed { .. }) {
                break;
            }
        }
        let tokens_before = ctl.tokens(1);
        let depth_before = ctl.queue_depth(1);
        for _ in 0..50 {
            epoch += 1;
            let verdict = ctl.offer(1, batch(rng.gen_range(0..epoch)));
            assert!(matches!(verdict, Admission::Shed { .. }));
            assert_eq!(ctl.tokens(1), tokens_before);
            assert_eq!(ctl.queue_depth(1), depth_before);
        }
        // The parked batches still drain in their original FIFO order.
        let mut drained = Vec::new();
        for _ in 0..10 {
            drained.extend(ctl.tick().into_iter().map(|(_, b)| b.epoch));
        }
        let sorted = {
            let mut s = drained.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(drained, sorted);
        assert_eq!(drained.len(), depth_before);
    }

    /// Property: per tenant, batches come back out of `tick` in exactly
    /// the order they were accepted, under a random interleaving of
    /// accepts, sheds and ticks across several tenants.
    #[test]
    fn fifo_order_is_preserved_under_interleaved_accept_and_shed() {
        let mut rng = StdRng::seed_from_u64(0xF1F0_0D4E);
        let config = AdmissionConfig {
            quota_tokens: 1,
            refill_per_tick: 1,
            queue_capacity: 4,
            policy: OverloadPolicy::Queue,
        };
        let mut ctl = AdmissionController::new(config);
        let tenants: Vec<TenantId> = vec![1, 2, 3];
        for &t in &tenants {
            ctl.register(t);
        }
        let mut accepted: BTreeMap<TenantId, Vec<u64>> = BTreeMap::new();
        let mut applied: BTreeMap<TenantId, Vec<u64>> = BTreeMap::new();
        let mut epoch = 0u64;
        for _ in 0..600 {
            if rng.gen_range(0..5) == 0 {
                for (tenant, batch) in ctl.tick() {
                    applied.entry(tenant).or_default().push(batch.epoch);
                }
            } else {
                epoch += 1;
                let tenant = tenants[rng.gen_range(0..3) as usize];
                match ctl.offer(tenant, batch(epoch)) {
                    Admission::Admit(b) => {
                        accepted.entry(tenant).or_default().push(b.epoch);
                        applied.entry(tenant).or_default().push(b.epoch);
                    }
                    Admission::Queued { .. } => {
                        accepted.entry(tenant).or_default().push(epoch);
                    }
                    Admission::Shed { .. } => {}
                }
            }
        }
        for _ in 0..10 {
            for (tenant, batch) in ctl.tick() {
                applied.entry(tenant).or_default().push(batch.epoch);
            }
        }
        assert_eq!(accepted, applied, "acceptance order == application order");
    }
}
