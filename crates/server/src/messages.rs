//! The typed request/response surface of the front door.
//!
//! Every message is encoded with the canonical [`scout_fabric::wire`] codec,
//! which makes the server API one more **untrusted surface**: the fuzzer's
//! `Surface::Server` arm decodes arbitrary bytes as [`ServerRequest`] and
//! holds the decoder to the same no-panic / fixpoint / typed-rejection
//! oracles as every other boundary. A server never trusts that a request
//! decoded cleanly *means* anything — tenant existence, epoch ordering and
//! quota state are all re-checked behind the decode.
//!
//! Tag spaces are append-only: new variants take the next free tag, existing
//! tags are never reused, so old captures replay against newer decoders with
//! typed errors instead of misparses.

use scout_core::{ReportDelta, ScoutReport, SessionError};
use scout_fabric::wire::{Wire, WireError, WireReader, WireWriter};
use scout_fabric::{EventBatch, FullSync};
use scout_policy::PolicyUniverse;
use std::fmt;

/// A tenant identifier as carried on the wire.
///
/// Plain `u64` rather than a newtype: the serving layer's tenant space is
/// owned by whoever operates the fleet (a SaaS control plane, a test
/// driver), not by the policy model — `scout_policy::TenantId` names EPG
/// ownership *inside* one fabric and is unrelated.
pub type TenantId = u64;

/// One request from a tenant to the front door.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerRequest {
    /// Registers `tenant` and opens an analysis session over a pristine
    /// deployment of `universe` (the server recreates the fabric and
    /// deploys it; drift arrives later as [`ServerRequest::Ingest`]).
    OpenSession {
        /// The tenant to register.
        tenant: TenantId,
        /// The policy the tenant's fabric deploys.
        universe: PolicyUniverse,
    },
    /// Feeds one epoch of observed drift into the tenant's session, subject
    /// to admission control.
    Ingest {
        /// The session owner.
        tenant: TenantId,
        /// The epoch's event batch (strictly `next_epoch`-sequenced,
        /// counting batches already parked in the tenant's queue).
        batch: EventBatch,
    },
    /// Recovers from a delivery gap with a fresh full read of the fabric.
    Resync {
        /// The session owner.
        tenant: TenantId,
        /// The epoch of the fresh read (must cover the gap).
        epoch: u64,
        /// The fresh full read.
        sync: FullSync,
    },
    /// Forces a durability point for the tenant's session.
    Checkpoint {
        /// The session owner.
        tenant: TenantId,
    },
    /// Reads the tenant's current full report.
    Query {
        /// The session owner.
        tenant: TenantId,
    },
    /// Closes the tenant's session and drops its admission lane.
    CloseSession {
        /// The session owner.
        tenant: TenantId,
    },
}

impl ServerRequest {
    /// The tenant this request concerns.
    pub fn tenant(&self) -> TenantId {
        match self {
            ServerRequest::OpenSession { tenant, .. }
            | ServerRequest::Ingest { tenant, .. }
            | ServerRequest::Resync { tenant, .. }
            | ServerRequest::Checkpoint { tenant }
            | ServerRequest::Query { tenant }
            | ServerRequest::CloseSession { tenant } => *tenant,
        }
    }
}

/// The front door's answer to one [`ServerRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServerResponse {
    /// The session is open; analysis starts at `epoch`.
    Opened {
        /// The registered tenant.
        tenant: TenantId,
        /// The session's opening epoch.
        epoch: u64,
    },
    /// The batch was applied synchronously.
    Ingested {
        /// The session owner.
        tenant: TenantId,
        /// What the batch changed.
        delta: ReportDelta,
    },
    /// The batch was accepted but parked in the tenant's queue; it will be
    /// applied by a later server tick. **Accepted means owned**: a queued
    /// batch is never dropped while the session stays open.
    Queued {
        /// The session owner.
        tenant: TenantId,
        /// The tenant's queue depth after parking (this batch included).
        depth: u64,
    },
    /// The resync was applied.
    Resynced {
        /// The session owner.
        tenant: TenantId,
        /// What the resync changed.
        delta: ReportDelta,
    },
    /// The durability point is on disk (or, for in-memory tenants, the
    /// checkpoint was taken).
    Checkpointed {
        /// The session owner.
        tenant: TenantId,
        /// The epoch the checkpoint covers.
        epoch: u64,
    },
    /// The tenant's current full report.
    Report {
        /// The session owner.
        tenant: TenantId,
        /// The session's current epoch.
        epoch: u64,
        /// The full analysis report at that epoch.
        report: ScoutReport,
    },
    /// The session is closed.
    Closed {
        /// The former session owner.
        tenant: TenantId,
        /// The epoch the session closed at.
        epoch: u64,
    },
    /// The request was refused with a typed error.
    Error(ServerError),
}

/// Why the front door refused a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The tenant is over quota and its queue is full (or the shed policy
    /// is in force): the batch was **not** accepted and must be resent.
    Shed {
        /// The tenant that was shed.
        tenant: TenantId,
        /// How many server ticks the tenant should wait before retrying —
        /// the earliest tick by which the current backlog can have drained
        /// at the configured refill rate.
        retry_hint: u64,
    },
    /// No open session for this tenant.
    UnknownTenant {
        /// The unknown tenant.
        tenant: TenantId,
    },
    /// [`ServerRequest::OpenSession`] for a tenant that is already open.
    TenantExists {
        /// The already-registered tenant.
        tenant: TenantId,
    },
    /// The tenant's session rejected the payload (epoch ordering, unknown
    /// switch, …).
    Session {
        /// The session owner.
        tenant: TenantId,
        /// The session's typed rejection.
        error: SessionError,
    },
    /// A cluster routed the request to a node that does not own the tenant
    /// (stale routing during reassignment).
    WrongOwner {
        /// The tenant whose request was misrouted.
        tenant: TenantId,
        /// The node that actually owns it.
        owner: u64,
    },
    /// The request bytes did not decode as a canonical [`ServerRequest`],
    /// or the request is not supported by the tenant's backend.
    BadRequest {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The tenant's durable store failed the request.
    Storage {
        /// The session owner.
        tenant: TenantId,
        /// Human-readable store failure.
        reason: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Shed { tenant, retry_hint } => {
                write!(f, "tenant {tenant} shed; retry after {retry_hint} tick(s)")
            }
            ServerError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
            ServerError::TenantExists { tenant } => {
                write!(f, "tenant {tenant} already has an open session")
            }
            ServerError::Session { tenant, error } => {
                write!(f, "tenant {tenant}: {error}")
            }
            ServerError::WrongOwner { tenant, owner } => {
                write!(f, "tenant {tenant} is owned by node {owner}")
            }
            ServerError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServerError::Storage { tenant, reason } => {
                write!(f, "tenant {tenant}: store failure: {reason}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl Wire for ServerRequest {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ServerRequest::OpenSession { tenant, universe } => {
                w.put_u8(0);
                w.put_u64(*tenant);
                universe.encode(w);
            }
            ServerRequest::Ingest { tenant, batch } => {
                w.put_u8(1);
                w.put_u64(*tenant);
                batch.encode(w);
            }
            ServerRequest::Resync {
                tenant,
                epoch,
                sync,
            } => {
                w.put_u8(2);
                w.put_u64(*tenant);
                w.put_u64(*epoch);
                sync.encode(w);
            }
            ServerRequest::Checkpoint { tenant } => {
                w.put_u8(3);
                w.put_u64(*tenant);
            }
            ServerRequest::Query { tenant } => {
                w.put_u8(4);
                w.put_u64(*tenant);
            }
            ServerRequest::CloseSession { tenant } => {
                w.put_u8(5);
                w.put_u64(*tenant);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ServerRequest::OpenSession {
                tenant: r.get_u64()?,
                universe: Wire::decode(r)?,
            }),
            1 => Ok(ServerRequest::Ingest {
                tenant: r.get_u64()?,
                batch: Wire::decode(r)?,
            }),
            2 => Ok(ServerRequest::Resync {
                tenant: r.get_u64()?,
                epoch: r.get_u64()?,
                sync: Wire::decode(r)?,
            }),
            3 => Ok(ServerRequest::Checkpoint {
                tenant: r.get_u64()?,
            }),
            4 => Ok(ServerRequest::Query {
                tenant: r.get_u64()?,
            }),
            5 => Ok(ServerRequest::CloseSession {
                tenant: r.get_u64()?,
            }),
            tag => Err(WireError::InvalidTag {
                what: "ServerRequest",
                tag,
            }),
        }
    }
}

impl Wire for ServerResponse {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ServerResponse::Opened { tenant, epoch } => {
                w.put_u8(0);
                w.put_u64(*tenant);
                w.put_u64(*epoch);
            }
            ServerResponse::Ingested { tenant, delta } => {
                w.put_u8(1);
                w.put_u64(*tenant);
                delta.encode(w);
            }
            ServerResponse::Queued { tenant, depth } => {
                w.put_u8(2);
                w.put_u64(*tenant);
                w.put_u64(*depth);
            }
            ServerResponse::Resynced { tenant, delta } => {
                w.put_u8(3);
                w.put_u64(*tenant);
                delta.encode(w);
            }
            ServerResponse::Checkpointed { tenant, epoch } => {
                w.put_u8(4);
                w.put_u64(*tenant);
                w.put_u64(*epoch);
            }
            ServerResponse::Report {
                tenant,
                epoch,
                report,
            } => {
                w.put_u8(5);
                w.put_u64(*tenant);
                w.put_u64(*epoch);
                report.encode(w);
            }
            ServerResponse::Closed { tenant, epoch } => {
                w.put_u8(6);
                w.put_u64(*tenant);
                w.put_u64(*epoch);
            }
            ServerResponse::Error(error) => {
                w.put_u8(7);
                error.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ServerResponse::Opened {
                tenant: r.get_u64()?,
                epoch: r.get_u64()?,
            }),
            1 => Ok(ServerResponse::Ingested {
                tenant: r.get_u64()?,
                delta: Wire::decode(r)?,
            }),
            2 => Ok(ServerResponse::Queued {
                tenant: r.get_u64()?,
                depth: r.get_u64()?,
            }),
            3 => Ok(ServerResponse::Resynced {
                tenant: r.get_u64()?,
                delta: Wire::decode(r)?,
            }),
            4 => Ok(ServerResponse::Checkpointed {
                tenant: r.get_u64()?,
                epoch: r.get_u64()?,
            }),
            5 => Ok(ServerResponse::Report {
                tenant: r.get_u64()?,
                epoch: r.get_u64()?,
                report: Wire::decode(r)?,
            }),
            6 => Ok(ServerResponse::Closed {
                tenant: r.get_u64()?,
                epoch: r.get_u64()?,
            }),
            7 => Ok(ServerResponse::Error(Wire::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                what: "ServerResponse",
                tag,
            }),
        }
    }
}

impl Wire for ServerError {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ServerError::Shed { tenant, retry_hint } => {
                w.put_u8(0);
                w.put_u64(*tenant);
                w.put_u64(*retry_hint);
            }
            ServerError::UnknownTenant { tenant } => {
                w.put_u8(1);
                w.put_u64(*tenant);
            }
            ServerError::TenantExists { tenant } => {
                w.put_u8(2);
                w.put_u64(*tenant);
            }
            ServerError::Session { tenant, error } => {
                w.put_u8(3);
                w.put_u64(*tenant);
                error.encode(w);
            }
            ServerError::WrongOwner { tenant, owner } => {
                w.put_u8(4);
                w.put_u64(*tenant);
                w.put_u64(*owner);
            }
            ServerError::BadRequest { reason } => {
                w.put_u8(5);
                w.put_str(reason);
            }
            ServerError::Storage { tenant, reason } => {
                w.put_u8(6);
                w.put_u64(*tenant);
                w.put_str(reason);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ServerError::Shed {
                tenant: r.get_u64()?,
                retry_hint: r.get_u64()?,
            }),
            1 => Ok(ServerError::UnknownTenant {
                tenant: r.get_u64()?,
            }),
            2 => Ok(ServerError::TenantExists {
                tenant: r.get_u64()?,
            }),
            3 => Ok(ServerError::Session {
                tenant: r.get_u64()?,
                error: Wire::decode(r)?,
            }),
            4 => Ok(ServerError::WrongOwner {
                tenant: r.get_u64()?,
                owner: r.get_u64()?,
            }),
            5 => Ok(ServerError::BadRequest {
                reason: String::decode(r)?,
            }),
            6 => Ok(ServerError::Storage {
                tenant: r.get_u64()?,
                reason: String::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag {
                what: "ServerError",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_core::{ResyncRequest, ScoutEngine};
    use scout_fabric::wire::{from_bytes, to_bytes};
    use scout_fabric::{Fabric, FabricProbe};
    use scout_policy::sample;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(value: &T) {
        let bytes = to_bytes(value);
        let decoded: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(&decoded, value);
        assert_eq!(to_bytes(&decoded), bytes, "encode is a fixpoint");
    }

    fn sample_delta() -> ReportDelta {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);
        fabric.evict_tcam(sample::S2, 1, false);
        session.ingest_observation(&mut probe, &fabric).unwrap()
    }

    fn sample_report() -> ScoutReport {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.disconnect_switch(sample::S1);
        ScoutEngine::new().analyze(&fabric)
    }

    #[test]
    fn every_request_variant_roundtrips() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let batch = EventBatch::empty(3);
        for request in [
            ServerRequest::OpenSession {
                tenant: 1,
                universe: sample::three_tier(),
            },
            ServerRequest::Ingest {
                tenant: 2,
                batch: batch.clone(),
            },
            ServerRequest::Resync {
                tenant: 3,
                epoch: 9,
                sync: FullSync::of(&fabric),
            },
            ServerRequest::Checkpoint { tenant: 4 },
            ServerRequest::Query { tenant: 5 },
            ServerRequest::CloseSession { tenant: 6 },
        ] {
            roundtrip(&request);
        }
    }

    #[test]
    fn every_response_variant_roundtrips() {
        let delta = sample_delta();
        for response in [
            ServerResponse::Opened {
                tenant: 1,
                epoch: 0,
            },
            ServerResponse::Ingested {
                tenant: 2,
                delta: delta.clone(),
            },
            ServerResponse::Queued {
                tenant: 3,
                depth: 4,
            },
            ServerResponse::Resynced {
                tenant: 4,
                delta: delta.clone(),
            },
            ServerResponse::Checkpointed {
                tenant: 5,
                epoch: 7,
            },
            ServerResponse::Report {
                tenant: 6,
                epoch: 8,
                report: sample_report(),
            },
            ServerResponse::Closed {
                tenant: 7,
                epoch: 9,
            },
            ServerResponse::Error(ServerError::Shed {
                tenant: 8,
                retry_hint: 2,
            }),
        ] {
            roundtrip(&response);
        }
    }

    #[test]
    fn every_error_variant_roundtrips() {
        for error in [
            ServerError::Shed {
                tenant: 1,
                retry_hint: 3,
            },
            ServerError::UnknownTenant { tenant: 2 },
            ServerError::TenantExists { tenant: 3 },
            ServerError::Session {
                tenant: 4,
                error: SessionError::EpochGap {
                    resync: ResyncRequest {
                        from_epoch: 5,
                        observed_epoch: 9,
                    },
                },
            },
            ServerError::WrongOwner {
                tenant: 5,
                owner: 2,
            },
            ServerError::BadRequest {
                reason: "not wire".into(),
            },
            ServerError::Storage {
                tenant: 6,
                reason: "torn segment".into(),
            },
        ] {
            roundtrip(&error);
            // Display renders with context (the tenant or reason).
            assert!(!error.to_string().is_empty());
            roundtrip(&ServerResponse::Error(error));
        }
    }

    #[test]
    fn unknown_tags_are_typed_rejections() {
        assert_eq!(
            from_bytes::<ServerRequest>(&[6]),
            Err(WireError::InvalidTag {
                what: "ServerRequest",
                tag: 6
            })
        );
        assert_eq!(
            from_bytes::<ServerResponse>(&[8]),
            Err(WireError::InvalidTag {
                what: "ServerResponse",
                tag: 8
            })
        );
        assert_eq!(
            from_bytes::<ServerError>(&[7]),
            Err(WireError::InvalidTag {
                what: "ServerError",
                tag: 7
            })
        );
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let bytes = to_bytes(&ServerRequest::OpenSession {
            tenant: 42,
            universe: sample::three_tier(),
        });
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    from_bytes::<ServerRequest>(&bytes[..cut]),
                    Err(WireError::UnexpectedEof { .. })
                ),
                "cut at {cut}"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0xAB);
        assert_eq!(
            from_bytes::<ServerRequest>(&trailing),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn non_canonical_payloads_are_rejected_through_the_request() {
        // A Resync whose view carries a TCAM table for a switch outside the
        // topology: every FabricView validation applies behind the request
        // decoder.
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let view = scout_fabric::FabricView::of(&fabric);
        let mut w = WireWriter::new();
        w.put_u8(2); // Resync
        w.put_u64(7); // tenant
        w.put_u64(3); // epoch
        w.put_u64(view.universe_version());
        view.universe().encode(&mut w);
        let mut tcam = view.tcam().clone();
        tcam.insert(scout_policy::SwitchId::new(9999), Vec::new());
        tcam.encode(&mut w);
        view.change_log().encode(&mut w);
        view.fault_log().encode(&mut w);
        assert_eq!(
            from_bytes::<ServerRequest>(&w.into_bytes()),
            Err(WireError::Invalid { what: "FabricView" })
        );

        // A non-canonical container inside a response: a delta whose
        // `rechecked` set arrives in descending order.
        let mut w = WireWriter::new();
        w.put_u8(1); // Ingested
        w.put_u64(7); // tenant
        w.put_u64(3); // delta.epoch
        w.put_usize(2); // rechecked: two entries, descending
        scout_policy::SwitchId::new(2).encode(&mut w);
        scout_policy::SwitchId::new(1).encode(&mut w);
        assert_eq!(
            from_bytes::<ServerResponse>(&w.into_bytes()),
            Err(WireError::NonCanonical { what: "BTreeSet" })
        );
    }
}
