//! Heartbeat-based membership: who is alive, and when did we decide they
//! were not.
//!
//! The cluster runs on a logical clock — one [`Membership::tick`] per
//! coordinator round. A node is **suspected dead** once it has missed more
//! than `heartbeat_timeout` consecutive ticks, and death is *sticky*: a
//! partitioned node that comes back is not re-admitted with its old
//! identity, because its sessions may already have been reassigned (the
//! classic split-brain hazard; a real deployment would rejoin it under a
//! fresh node id). Everything is deterministic — given the same join /
//! heartbeat / tick history, every observer derives the same alive set, so
//! leader election needs no extra consensus round.

use std::collections::{BTreeMap, BTreeSet};

/// A cluster node identifier.
pub type NodeId = u64;

/// Liveness bookkeeping for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeHealth {
    last_heartbeat: u64,
    alive: bool,
}

/// The cluster's view of which nodes are alive, driven by heartbeats and a
/// logical tick clock.
#[derive(Debug, Clone)]
pub struct Membership {
    /// Missed ticks tolerated before a node is declared dead.
    timeout: u64,
    nodes: BTreeMap<NodeId, NodeHealth>,
    now: u64,
}

impl Membership {
    /// A membership view tolerating `timeout` missed ticks.
    pub fn new(timeout: u64) -> Self {
        Self {
            timeout,
            nodes: BTreeMap::new(),
            now: 0,
        }
    }

    /// The current logical time (ticks elapsed).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Admits `node` as alive with a fresh heartbeat. Re-joining a dead
    /// node id is ignored (death is sticky — see the module docs).
    pub fn join(&mut self, node: NodeId) {
        let covers = self.now + 1;
        self.nodes.entry(node).or_insert(NodeHealth {
            last_heartbeat: covers,
            alive: true,
        });
    }

    /// Records a heartbeat from `node`. A heartbeat covers the *upcoming*
    /// tick (a node that beats every round shows zero lag, so even
    /// `timeout == 0` keeps a healthy node alive). Heartbeats from unknown
    /// or dead nodes are ignored.
    pub fn heartbeat(&mut self, node: NodeId) {
        let covers = self.now + 1;
        if let Some(health) = self.nodes.get_mut(&node) {
            if health.alive {
                health.last_heartbeat = covers;
            }
        }
    }

    /// Advances the clock one tick and returns the nodes **newly** declared
    /// dead this tick, ascending.
    pub fn tick(&mut self) -> Vec<NodeId> {
        self.now += 1;
        let mut newly_dead = Vec::new();
        for (&node, health) in &mut self.nodes {
            if health.alive && self.now - health.last_heartbeat > self.timeout {
                health.alive = false;
                newly_dead.push(node);
            }
        }
        newly_dead
    }

    /// Whether `node` is currently considered alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.get(&node).is_some_and(|health| health.alive)
    }

    /// The alive nodes, ascending.
    pub fn alive(&self) -> BTreeSet<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, health)| health.alive)
            .map(|(&node, _)| node)
            .collect()
    }

    /// Every node ever admitted, alive or dead, ascending.
    pub fn members(&self) -> BTreeSet<NodeId> {
        self.nodes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_past_the_timeout_is_death_and_death_is_sticky() {
        let mut m = Membership::new(2);
        m.join(1);
        m.join(2);

        // Node 2 heartbeats every tick; node 1 goes silent.
        assert!(m.tick().is_empty()); // join covers this tick
        m.heartbeat(2);
        assert!(m.tick().is_empty()); // 1 has missed 1 tick
        m.heartbeat(2);
        assert!(m.tick().is_empty()); // 1 has missed 2 ticks: at the limit
        m.heartbeat(2);
        assert_eq!(m.tick(), vec![1]); // past the limit: newly dead
        m.heartbeat(2);
        assert!(m.tick().is_empty()); // reported dead exactly once

        assert!(!m.is_alive(1));
        assert!(m.is_alive(2));

        // A late heartbeat or rejoin does not resurrect the old identity.
        m.heartbeat(1);
        m.join(1);
        assert!(!m.is_alive(1));
        assert_eq!(m.alive(), BTreeSet::from([2]));
        assert_eq!(m.members(), BTreeSet::from([1, 2]));
    }

    #[test]
    fn identical_histories_derive_identical_views() {
        let drive = |mut m: Membership| {
            m.join(1);
            m.join(2);
            m.join(3);
            for round in 0..6 {
                if round % 2 == 0 {
                    m.heartbeat(1);
                }
                m.heartbeat(3);
                m.tick();
            }
            m.alive()
        };
        assert_eq!(drive(Membership::new(2)), drive(Membership::new(2)));
        assert_eq!(drive(Membership::new(2)), BTreeSet::from([1, 3]));
    }
}
