//! Segment framing for the hash-chained `EventBatch` journal.
//!
//! A journal *segment* is one on-disk file: a fixed header followed by
//! append-only record frames, each carrying one [`EventBatch`] encoded with
//! the canonical `scout-fabric` wire codec. Everything here is pure bytes —
//! the filesystem layer lives in [`crate::store`] — so the same decoder
//! serves recovery, offline verification and the fuzz harness.
//!
//! # Layout
//!
//! ```text
//! segment  := header record*
//! header   := magic "SCJL" (4) ∥ version u32 (4) ∥ first_epoch u64 (8)
//!             ∥ prev_chain (32) ∥ header_crc u32 (4)        — 52 bytes
//! record   := len u32 (4) ∥ payload_crc u32 (4) ∥ chain (32)
//!             ∥ frame_crc u32 (4) ∥ payload (len)           — 44 + len bytes
//! ```
//!
//! All integers are little-endian, matching the wire codec. `prev_chain` is
//! the running chain digest at `first_epoch - 1`; each record's `chain` is
//! `SHA-256(prev ∥ payload)` ([`chain_next`]). `header_crc` covers the first
//! 48 header bytes; `frame_crc` covers the first 40 frame bytes;
//! `payload_crc` covers the payload.
//!
//! `first_epoch` is always ≥ 1: epoch 0 is the genesis snapshot anchor, so no
//! journal record ever carries it, and the decoder rejects a header claiming
//! it ([`JournalError::FirstEpochZero`]) — which also pins `end_epoch` away
//! from underflow on a crafted header-only segment. [`MAX_RECORD_PAYLOAD`]
//! is enforced on both sides of the boundary: the decoder refuses a frame
//! that promises more, and [`encode_record`] refuses to write a payload the
//! decoder would later refuse to read (which also keeps the `u32` length
//! field from silently wrapping).
//!
//! # Torn vs. tampered
//!
//! The decoder distinguishes *crash evidence* from *damage*. A torn tail —
//! the suffix a crashed writer never finished — is by construction a strict
//! prefix of an append: either fewer than 44 frame-header bytes remain, or a
//! valid frame header promises more payload than the file holds. Everything
//! else (bad CRC anywhere, chain mismatch, non-canonical payload, epoch
//! discontinuity) is a typed [`JournalError`], never a silent truncation:
//! `frame_crc` pins the length field itself, so a flipped length byte cannot
//! masquerade as a tear, and CRC-32 detects every burst of ≤ 32 bits, so any
//! single flipped byte in a frame or payload is caught before the chain is
//! even consulted.
//!
//! [`decode_segment`] is the strict form (tears are errors — the fuzz
//! surface); [`decode_segment_prefix`] is the lenient form recovery uses on
//! the final (active) segment only.

use std::fmt;

use scout_fabric::wire::{self, WireError};
use scout_fabric::EventBatch;

use crate::digest::{chain_next, Digest, DIGEST_LEN};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"SCJL";

/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Byte length of a segment header.
pub const SEGMENT_HEADER_LEN: usize = 4 + 4 + 8 + DIGEST_LEN + 4;

/// Byte length of a record frame before its payload.
pub const RECORD_HEADER_LEN: usize = 4 + 4 + DIGEST_LEN + 4;

/// Sanity cap on a single record payload (64 MiB). A frame that *validly*
/// promises more was never written by this crate.
pub const MAX_RECORD_PAYLOAD: u64 = 1 << 26;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — same parameters as
/// the `scout-core` snapshot frame. Public so byte-surgery tooling (the fuzz
/// corpus generator) can restamp frames it has deliberately damaged.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why segment bytes could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Fewer bytes than a segment header.
    TruncatedHeader {
        /// How many bytes were present.
        len: usize,
    },
    /// The first four bytes are not [`SEGMENT_MAGIC`].
    BadMagic,
    /// A version this build does not speak.
    UnsupportedVersion {
        /// The version found in the header.
        version: u32,
    },
    /// The header checksum does not match the header bytes.
    HeaderCrc,
    /// The header claims `first_epoch = 0`. Epoch 0 is the genesis snapshot
    /// anchor — no journal record ever carries it, so a segment claiming to
    /// start there was never written by this crate.
    FirstEpochZero,
    /// The segment ends inside a record (strict decode only — the lenient
    /// decoder reports this as a torn tail instead).
    TruncatedRecord {
        /// Byte offset of the incomplete frame.
        offset: usize,
    },
    /// A complete record frame whose frame checksum does not match — a
    /// damaged length/chain field, not a tear.
    FrameCrc {
        /// Byte offset of the damaged frame.
        offset: usize,
    },
    /// A frame validly promises a payload larger than [`MAX_RECORD_PAYLOAD`].
    OversizedRecord {
        /// Byte offset of the frame.
        offset: usize,
        /// The promised payload length.
        len: u64,
    },
    /// A batch whose wire encoding exceeds [`MAX_RECORD_PAYLOAD`] was handed
    /// to the *encoder* — journaling it would produce a record the decoder is
    /// required to refuse, so the write is refused instead.
    OversizedPayload {
        /// The encoded payload length.
        len: u64,
    },
    /// A record payload whose checksum does not match — flipped payload
    /// bytes.
    PayloadCrc {
        /// Epoch the damaged record claims.
        epoch: u64,
    },
    /// The stored chain digest is not `SHA-256(prev ∥ payload)` — a spliced
    /// or reordered record whose own frame is internally consistent.
    ChainMismatch {
        /// Epoch at which the chain breaks.
        epoch: u64,
    },
    /// The payload is not a canonical wire-encoded [`EventBatch`].
    Batch {
        /// Epoch of the undecodable record.
        epoch: u64,
        /// The wire-level decode failure.
        source: WireError,
    },
    /// A record's batch carries the wrong epoch for its journal position.
    EpochMismatch {
        /// Epoch the journal position requires.
        expected: u64,
        /// Epoch the batch claims.
        found: u64,
    },
    /// The record sequence would overflow the epoch counter.
    EpochOverflow,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::TruncatedHeader { len } => write!(
                f,
                "segment shorter than its {SEGMENT_HEADER_LEN}-byte header ({len} bytes)"
            ),
            JournalError::BadMagic => write!(f, "segment magic is not SCJL"),
            JournalError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported journal version {version} (want {JOURNAL_VERSION})"
                )
            }
            JournalError::HeaderCrc => write!(f, "segment header checksum mismatch"),
            JournalError::FirstEpochZero => write!(
                f,
                "segment claims first_epoch 0 (epoch 0 is the genesis anchor, never a record)"
            ),
            JournalError::TruncatedRecord { offset } => {
                write!(f, "segment ends inside a record frame at byte {offset}")
            }
            JournalError::FrameCrc { offset } => {
                write!(f, "record frame checksum mismatch at byte {offset}")
            }
            JournalError::OversizedRecord { offset, len } => write!(
                f,
                "record at byte {offset} promises {len}-byte payload (cap {MAX_RECORD_PAYLOAD})"
            ),
            JournalError::OversizedPayload { len } => write!(
                f,
                "batch encodes to {len} bytes, past the {MAX_RECORD_PAYLOAD}-byte record cap"
            ),
            JournalError::PayloadCrc { epoch } => {
                write!(f, "payload checksum mismatch in the epoch-{epoch} record")
            }
            JournalError::ChainMismatch { epoch } => {
                write!(f, "hash chain breaks at the epoch-{epoch} record")
            }
            JournalError::Batch { epoch, source } => {
                write!(
                    f,
                    "epoch-{epoch} record payload is not a canonical EventBatch: {source}"
                )
            }
            JournalError::EpochMismatch { expected, found } => write!(
                f,
                "record claims epoch {found} where the journal requires {expected}"
            ),
            JournalError::EpochOverflow => write!(f, "journal epoch counter would overflow"),
        }
    }
}

impl std::error::Error for JournalError {}

/// The fixed prologue of a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Epoch of the segment's first record.
    pub first_epoch: u64,
    /// Running chain digest at `first_epoch - 1`.
    pub prev_chain: Digest,
}

impl SegmentHeader {
    /// Encodes the header, stamping its checksum.
    pub fn to_bytes(&self) -> [u8; SEGMENT_HEADER_LEN] {
        let mut out = [0u8; SEGMENT_HEADER_LEN];
        out[0..4].copy_from_slice(&SEGMENT_MAGIC);
        out[4..8].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
        out[8..16].copy_from_slice(&self.first_epoch.to_le_bytes());
        out[16..48].copy_from_slice(&self.prev_chain);
        let crc = crc32(&out[0..48]);
        out[48..52].copy_from_slice(&crc.to_le_bytes());
        out
    }
}

/// One decoded journal record: the batch plus the chain value stored with it.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The event batch the record carries.
    pub batch: EventBatch,
    /// Chain digest over this record's payload.
    pub chain: Digest,
}

/// A fully decoded segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The segment header.
    pub header: SegmentHeader,
    /// The records, in epoch order starting at `header.first_epoch`.
    pub records: Vec<Record>,
}

impl Segment {
    /// Epoch of the last record, or `first_epoch - 1` for an empty segment.
    ///
    /// Decoded segments always have `first_epoch ≥ 1` (the decoder rejects
    /// [`JournalError::FirstEpochZero`]) and an epoch sequence the decoder
    /// has checked for overflow; for degenerate hand-built segments this
    /// saturates rather than wrapping.
    pub fn end_epoch(&self) -> u64 {
        self.header
            .first_epoch
            .saturating_sub(1)
            .saturating_add(self.records.len() as u64)
    }

    /// Running chain digest after the last record (the header's `prev_chain`
    /// for an empty segment).
    pub fn end_chain(&self) -> Digest {
        self.records
            .last()
            .map(|r| r.chain)
            .unwrap_or(self.header.prev_chain)
    }

    /// Canonical re-encoding; decoding accepted bytes and re-encoding them
    /// is byte-identical (the fuzz fixpoint oracle).
    ///
    /// # Panics
    ///
    /// If a hand-built record's batch encodes past [`MAX_RECORD_PAYLOAD`].
    /// Decoded segments never do — the decoder enforces the same cap.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.header.to_bytes().to_vec();
        let mut chain = self.header.prev_chain;
        for record in &self.records {
            let (frame, next) =
                encode_record(&chain, &record.batch).expect("decoded payloads are within the cap");
            out.extend_from_slice(&frame);
            chain = next;
        }
        out
    }
}

/// Encodes one record frame: returns the frame bytes (header + payload) and
/// the new running chain digest.
///
/// Refuses ([`JournalError::OversizedPayload`]) a batch whose wire encoding
/// exceeds [`MAX_RECORD_PAYLOAD`]: the decoder is required to reject such a
/// record, so writing it would journal bytes that can never be recovered —
/// and past `u32::MAX` the length field would silently wrap besides. The
/// check runs before any hashing, so refusal is cheap.
pub fn encode_record(
    prev_chain: &Digest,
    batch: &EventBatch,
) -> Result<(Vec<u8>, Digest), JournalError> {
    let payload = wire::to_bytes(batch);
    if payload.len() as u64 > MAX_RECORD_PAYLOAD {
        return Err(JournalError::OversizedPayload {
            len: payload.len() as u64,
        });
    }
    let chain = chain_next(prev_chain, &payload);
    let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&chain);
    let frame_crc = crc32(&frame[0..40]);
    frame.extend_from_slice(&frame_crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok((frame, chain))
}

/// Result of a lenient (recovery-side) segment decode.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPrefix {
    /// The valid prefix of the segment.
    pub segment: Segment,
    /// How many input bytes the valid prefix occupies.
    pub consumed: usize,
    /// Whether a torn (incomplete) tail follows the valid prefix.
    pub torn: bool,
}

/// Strictly decodes a complete segment: any torn tail, damaged byte or
/// non-canonical payload is a typed [`JournalError`].
pub fn decode_segment(bytes: &[u8]) -> Result<Segment, JournalError> {
    let prefix = walk(bytes, false)?;
    debug_assert!(!prefix.torn);
    debug_assert_eq!(prefix.consumed, bytes.len());
    Ok(prefix.segment)
}

/// Leniently decodes a segment, tolerating (only) a torn tail: the suffix a
/// crashed append never completed. Every other defect is still a typed
/// [`JournalError`]. Used by recovery on the final, active segment.
pub fn decode_segment_prefix(bytes: &[u8]) -> Result<SegmentPrefix, JournalError> {
    walk(bytes, true)
}

fn walk(bytes: &[u8], lenient: bool) -> Result<SegmentPrefix, JournalError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(JournalError::TruncatedHeader { len: bytes.len() });
    }
    if bytes[0..4] != SEGMENT_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion { version });
    }
    let stored_crc = u32::from_le_bytes(bytes[48..52].try_into().expect("4 bytes"));
    if crc32(&bytes[0..48]) != stored_crc {
        return Err(JournalError::HeaderCrc);
    }
    let first_epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if first_epoch == 0 {
        // Epoch 0 is the genesis anchor; no writer ever opens a segment
        // there. Rejecting it here also keeps `end_epoch` well-defined for
        // every decoded segment, including a crafted header-only one.
        return Err(JournalError::FirstEpochZero);
    }
    let prev_chain: Digest = bytes[16..48].try_into().expect("32 bytes");

    let header = SegmentHeader {
        first_epoch,
        prev_chain,
    };
    let mut records = Vec::new();
    let mut chain = prev_chain;
    let mut epoch = first_epoch;
    let mut offset = SEGMENT_HEADER_LEN;
    let mut torn = false;

    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_HEADER_LEN {
            // A tear can only be a strict prefix of an append, so an
            // incomplete frame header is crash evidence, not damage.
            if lenient {
                torn = true;
                break;
            }
            return Err(JournalError::TruncatedRecord { offset });
        }
        let frame = &bytes[offset..];
        let stored_frame_crc = u32::from_le_bytes(frame[40..44].try_into().expect("4 bytes"));
        if crc32(&frame[0..40]) != stored_frame_crc {
            // The frame header is complete but damaged — never a tear.
            return Err(JournalError::FrameCrc { offset });
        }
        let len = u64::from(u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")));
        if len > MAX_RECORD_PAYLOAD {
            return Err(JournalError::OversizedRecord { offset, len });
        }
        let len = len as usize;
        if remaining - RECORD_HEADER_LEN < len {
            // Valid frame header promising more payload than the file holds:
            // the append tore mid-payload.
            if lenient {
                torn = true;
                break;
            }
            return Err(JournalError::TruncatedRecord { offset });
        }
        let payload = &frame[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        let stored_payload_crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if crc32(payload) != stored_payload_crc {
            return Err(JournalError::PayloadCrc { epoch });
        }
        let stored_chain: Digest = frame[8..40].try_into().expect("32 bytes");
        if chain_next(&chain, payload) != stored_chain {
            return Err(JournalError::ChainMismatch { epoch });
        }
        let batch: EventBatch =
            wire::from_bytes(payload).map_err(|source| JournalError::Batch { epoch, source })?;
        if batch.epoch != epoch {
            return Err(JournalError::EpochMismatch {
                expected: epoch,
                found: batch.epoch,
            });
        }
        records.push(Record {
            batch,
            chain: stored_chain,
        });
        chain = stored_chain;
        epoch = epoch.checked_add(1).ok_or(JournalError::EpochOverflow)?;
        offset += RECORD_HEADER_LEN + len;
    }

    Ok(SegmentPrefix {
        segment: Segment { header, records },
        consumed: offset,
        torn,
    })
}

/// Incrementally builds a segment's byte image — the writer used by the
/// store's file layer, the fuzz seed generator and the tests.
///
/// ```
/// use scout_fabric::EventBatch;
/// use scout_store::digest::sha256;
/// use scout_store::journal::{decode_segment, SegmentBuilder};
///
/// let mut builder = SegmentBuilder::new(1, sha256(b"genesis"));
/// builder.append(&EventBatch::empty(1)).unwrap();
/// builder.append(&EventBatch::empty(2)).unwrap();
/// let segment = decode_segment(builder.bytes()).unwrap();
/// assert_eq!(segment.end_epoch(), 2);
/// assert_eq!(segment.end_chain(), builder.chain());
/// ```
#[derive(Debug, Clone)]
pub struct SegmentBuilder {
    bytes: Vec<u8>,
    chain: Digest,
    next_epoch: u64,
    records: u64,
}

impl SegmentBuilder {
    /// A new segment whose first record will carry `first_epoch` (must be
    /// ≥ 1 — epoch 0 is the genesis anchor, and the decoder rejects a
    /// segment claiming to start there), chained onto `prev_chain`.
    pub fn new(first_epoch: u64, prev_chain: Digest) -> Self {
        debug_assert!(first_epoch >= 1, "journal segments start at epoch >= 1");
        let header = SegmentHeader {
            first_epoch,
            prev_chain,
        };
        SegmentBuilder {
            bytes: header.to_bytes().to_vec(),
            chain: prev_chain,
            next_epoch: first_epoch,
            records: 0,
        }
    }

    /// Appends one batch; its epoch must be exactly the next in sequence.
    /// Returns the encoded frame (what a file writer would append).
    pub fn append(&mut self, batch: &EventBatch) -> Result<Vec<u8>, JournalError> {
        if batch.epoch != self.next_epoch {
            return Err(JournalError::EpochMismatch {
                expected: self.next_epoch,
                found: batch.epoch,
            });
        }
        let (frame, chain) = encode_record(&self.chain, batch)?;
        self.bytes.extend_from_slice(&frame);
        self.chain = chain;
        self.next_epoch = self
            .next_epoch
            .checked_add(1)
            .ok_or(JournalError::EpochOverflow)?;
        self.records += 1;
        Ok(frame)
    }

    /// The segment's byte image so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The running chain digest after the last appended record.
    pub fn chain(&self) -> Digest {
        self.chain
    }

    /// Epoch the next appended batch must carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// How many records have been appended.
    pub fn record_count(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    fn batches(n: u64) -> Vec<EventBatch> {
        (1..=n).map(EventBatch::empty).collect()
    }

    fn build(n: u64) -> SegmentBuilder {
        let mut b = SegmentBuilder::new(1, sha256(b"test-genesis"));
        for batch in batches(n) {
            b.append(&batch).unwrap();
        }
        b
    }

    #[test]
    fn round_trip_and_fixpoint() {
        let builder = build(5);
        let segment = decode_segment(builder.bytes()).unwrap();
        assert_eq!(segment.header.first_epoch, 1);
        assert_eq!(segment.records.len(), 5);
        assert_eq!(segment.end_epoch(), 5);
        assert_eq!(segment.end_chain(), builder.chain());
        assert_eq!(segment.to_bytes(), builder.bytes());
    }

    #[test]
    fn empty_segment_round_trips() {
        let builder = SegmentBuilder::new(7, sha256(b"x"));
        let segment = decode_segment(builder.bytes()).unwrap();
        assert!(segment.records.is_empty());
        assert_eq!(segment.end_epoch(), 6);
        assert_eq!(segment.end_chain(), sha256(b"x"));
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error() {
        let builder = build(3);
        let clean = builder.bytes().to_vec();
        for i in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[i] ^= 0x01;
            // Strict decode: always an error.
            assert!(
                decode_segment(&damaged).is_err(),
                "flip at byte {i} was accepted by the strict decoder"
            );
            // Lenient decode: a flip is damage, never a tear — it must be an
            // error too, not a silent truncation.
            assert!(
                decode_segment_prefix(&damaged).is_err(),
                "flip at byte {i} was silently truncated by the lenient decoder"
            );
        }
    }

    #[test]
    fn torn_tails_truncate_leniently_and_fail_strictly() {
        let builder = build(3);
        let clean = builder.bytes().to_vec();
        let two = decode_segment(&clean[..]).unwrap();
        let second_end = {
            // Byte length of header + first two records.
            let mut b = SegmentBuilder::new(1, sha256(b"test-genesis"));
            b.append(&two.records[0].batch).unwrap();
            b.append(&two.records[1].batch).unwrap();
            b.bytes().len()
        };
        for cut in second_end + 1..clean.len() {
            let torn = &clean[..cut];
            assert!(matches!(
                decode_segment(torn),
                Err(JournalError::TruncatedRecord { .. })
            ));
            let prefix = decode_segment_prefix(torn).unwrap();
            assert!(prefix.torn);
            assert_eq!(prefix.consumed, second_end);
            assert_eq!(prefix.segment.records.len(), 2);
        }
        // A clean cut exactly between records is not torn.
        let prefix = decode_segment_prefix(&clean[..second_end]).unwrap();
        assert!(!prefix.torn);
        assert_eq!(prefix.segment.records.len(), 2);
    }

    #[test]
    fn spliced_records_break_the_chain() {
        // Swap the first two record frames wholesale: each frame is
        // internally consistent (its own CRCs hold) but the chain no longer
        // links — the decoder must call it a ChainMismatch, not accept it.
        let builder = build(2);
        let clean = builder.bytes().to_vec();
        let seg = decode_segment(&clean).unwrap();
        let first_len = {
            let (frame, _) = encode_record(&seg.header.prev_chain, &seg.records[0].batch).unwrap();
            frame.len()
        };
        let header = &clean[..SEGMENT_HEADER_LEN];
        let first = &clean[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + first_len];
        let second = &clean[SEGMENT_HEADER_LEN + first_len..];
        let mut spliced = header.to_vec();
        spliced.extend_from_slice(second);
        spliced.extend_from_slice(first);
        assert!(matches!(
            decode_segment(&spliced),
            Err(JournalError::ChainMismatch { epoch: 1 })
        ));
    }

    #[test]
    fn zero_first_epoch_is_a_typed_error_not_a_panic() {
        // The crafted input from the recovery-path audit: a header-only
        // segment claiming first_epoch = 0 with a freshly stamped CRC. Before
        // the decoder rejected it, `end_epoch` underflowed on it downstream.
        let header_only = SegmentHeader {
            first_epoch: 0,
            prev_chain: sha256(b"forged"),
        }
        .to_bytes()
        .to_vec();
        assert_eq!(
            decode_segment(&header_only),
            Err(JournalError::FirstEpochZero)
        );
        assert_eq!(
            decode_segment_prefix(&header_only),
            Err(JournalError::FirstEpochZero)
        );

        // Same with a fully stamped epoch-0 record attached: still rejected
        // at the header, before the record walk.
        let mut with_record = header_only.clone();
        let (frame, _) = encode_record(&sha256(b"forged"), &EventBatch::empty(0)).unwrap();
        with_record.extend_from_slice(&frame);
        assert_eq!(
            decode_segment(&with_record),
            Err(JournalError::FirstEpochZero)
        );
    }

    #[test]
    fn end_epoch_never_underflows_on_degenerate_segments() {
        // Unreachable via decode (FirstEpochZero), but `Segment` is plain
        // data: hand-built degenerate values must not wrap.
        let degenerate = Segment {
            header: SegmentHeader {
                first_epoch: 0,
                prev_chain: sha256(b"x"),
            },
            records: Vec::new(),
        };
        assert_eq!(degenerate.end_epoch(), 0);
    }

    #[test]
    fn oversized_payload_is_refused_at_encode_time() {
        use scout_fabric::FabricEvent;
        use scout_policy::sample;

        // A real rule from a deployed fabric, repeated until the batch's
        // wire encoding lands just past the cap.
        let mut fabric = scout_fabric::Fabric::new(sample::three_tier());
        fabric.deploy();
        let rule = fabric.tcam_rules(sample::S1)[0];
        let sized = |n: usize| {
            wire::to_bytes(&EventBatch::new(
                1,
                vec![FabricEvent::TcamSync {
                    switch: sample::S1,
                    rules: vec![rule; n],
                }],
            ))
            .len()
        };
        let base = sized(0);
        let per_rule = sized(1) - base;
        let count = (MAX_RECORD_PAYLOAD as usize - base) / per_rule + 2;
        let huge = EventBatch::new(
            1,
            vec![FabricEvent::TcamSync {
                switch: sample::S1,
                rules: vec![rule; count],
            }],
        );

        let genesis = sha256(b"g");
        match encode_record(&genesis, &huge) {
            Err(JournalError::OversizedPayload { len }) => assert!(len > MAX_RECORD_PAYLOAD),
            other => panic!("oversized encode must be refused, got {other:?}"),
        }

        // The builder refuses too, without consuming the epoch or appending
        // any bytes — and then accepts a normal batch at the same epoch.
        let mut builder = SegmentBuilder::new(1, genesis);
        let len_before = builder.bytes().len();
        assert!(matches!(
            builder.append(&huge),
            Err(JournalError::OversizedPayload { .. })
        ));
        assert_eq!(builder.next_epoch(), 1);
        assert_eq!(builder.record_count(), 0);
        assert_eq!(builder.bytes().len(), len_before);
        builder.append(&EventBatch::empty(1)).unwrap();
        decode_segment(builder.bytes()).unwrap();
    }

    #[test]
    fn builder_enforces_epoch_sequencing() {
        let mut b = SegmentBuilder::new(1, sha256(b"g"));
        assert_eq!(
            b.append(&EventBatch::empty(3)),
            Err(JournalError::EpochMismatch {
                expected: 1,
                found: 3
            })
        );
        b.append(&EventBatch::empty(1)).unwrap();
        assert_eq!(b.next_epoch(), 2);
        assert_eq!(b.record_count(), 1);
    }

    #[test]
    fn wrong_epoch_record_is_rejected() {
        // Hand-build a frame whose batch claims the wrong epoch but whose
        // CRCs and chain are all freshly stamped.
        let genesis = sha256(b"g");
        let mut bytes = SegmentHeader {
            first_epoch: 1,
            prev_chain: genesis,
        }
        .to_bytes()
        .to_vec();
        let (frame, _) = encode_record(&genesis, &EventBatch::empty(9)).unwrap();
        bytes.extend_from_slice(&frame);
        assert_eq!(
            decode_segment(&bytes),
            Err(JournalError::EpochMismatch {
                expected: 1,
                found: 9
            })
        );
    }

    #[test]
    fn garbage_payload_with_valid_frame_is_a_batch_error() {
        let genesis = sha256(b"g");
        let mut bytes = SegmentHeader {
            first_epoch: 1,
            prev_chain: genesis,
        }
        .to_bytes()
        .to_vec();
        let payload = b"definitely not wire".to_vec();
        let chain = chain_next(&genesis, &payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&chain);
        let fcrc = crc32(&frame[0..40]);
        frame.extend_from_slice(&fcrc.to_le_bytes());
        frame.extend_from_slice(&payload);
        bytes.extend_from_slice(&frame);
        assert!(matches!(
            decode_segment(&bytes),
            Err(JournalError::Batch { epoch: 1, .. })
        ));
    }

    #[test]
    fn errors_render() {
        for err in [
            JournalError::TruncatedHeader { len: 3 },
            JournalError::BadMagic,
            JournalError::UnsupportedVersion { version: 9 },
            JournalError::HeaderCrc,
            JournalError::FirstEpochZero,
            JournalError::TruncatedRecord { offset: 52 },
            JournalError::FrameCrc { offset: 52 },
            JournalError::OversizedRecord {
                offset: 52,
                len: 1 << 40,
            },
            JournalError::OversizedPayload { len: 1 << 40 },
            JournalError::PayloadCrc { epoch: 4 },
            JournalError::ChainMismatch { epoch: 4 },
            JournalError::Batch {
                epoch: 4,
                source: WireError::UnexpectedEof {
                    needed: 4,
                    remaining: 0,
                },
            },
            JournalError::EpochMismatch {
                expected: 4,
                found: 5,
            },
            JournalError::EpochOverflow,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
