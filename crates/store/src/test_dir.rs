//! Self-cleaning temporary store directories for tests, benches and soaks.
//!
//! The workspace is registry-free (no `tempfile`), so the handful of
//! consumers that need a scratch store directory — the store's own tests,
//! the root `tests/store.rs` suite, the crash soak in `scout-sim` and the
//! recovery bench — share this minimal helper instead of each reinventing
//! it. Uniqueness comes from the process id plus a process-wide counter, so
//! parallel test threads never collide; the directory tree is removed on
//! drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, recursively
/// deleted on drop.
///
/// ```
/// use scout_store::test_dir::TestDir;
///
/// let dir = TestDir::new("doc");
/// assert!(dir.path().is_dir());
/// ```
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates `…/scout-store-<label>-<pid>-<n>` under the system temp dir.
    pub fn new(label: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("scout-store-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("temp dir is writable");
        TestDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
