//! # scout-store
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the repo
//! root is the crate-by-crate tour showing where this crate sits in the
//! pipeline.
//!
//! Durable, hash-chained persistence for [`AnalysisSession`]s: an
//! append-only `EventBatch` journal ([`journal`]) anchored by periodic
//! snapshot files ([`anchor`]), with fsync'd group commit, compaction and
//! tamper-evident crash recovery ([`store`]).
//!
//! The paper's continuous-verification loop only matters in production if
//! the analysis state survives the analyzer. `scout-core`'s
//! checkpoint/restore snapshots are in-memory artifacts; this crate makes
//! them — and every epoch between them — crash-durable:
//!
//! * every accepted batch is **journaled before it is applied** (write-ahead),
//!   framed over the canonical `scout-fabric` wire codec with a per-record
//!   CRC and a SHA-256 chain digest ([`digest`]);
//! * [`DurableSession::commit`] is the group-commit boundary (one fsync for
//!   any number of staged appends);
//! * snapshot anchors are written atomically (tmp → fsync → rename) and
//!   carry the running chain digest at their epoch, so the journal and the
//!   snapshots cross-authenticate;
//! * recovery ([`DurableEngine::recover`]) verifies **every byte of every
//!   store file** — any flipped byte or spliced record is a typed
//!   [`StoreError`], never a panic, never a silent acceptance — truncates
//!   crash-torn tails, restores the newest anchor through the ordinary
//!   engine path and replays the tail through ordinary `ingest`, landing
//!   bit-identical to the uninterrupted session.
//!
//! # Example
//!
//! ```
//! use scout_core::ScoutEngine;
//! use scout_fabric::{EventBatch, Fabric};
//! use scout_policy::sample;
//! use scout_store::{DurableEngine, StoreConfig};
//! use scout_store::test_dir::TestDir;
//!
//! let dir = TestDir::new("lib-doc");
//! let mut fabric = Fabric::new(sample::three_tier());
//! fabric.deploy();
//!
//! let engine = ScoutEngine::new();
//! let mut durable = engine
//!     .open_durable(&fabric, dir.path(), StoreConfig::default())
//!     .unwrap();
//! for epoch in 1..=5 {
//!     durable.ingest(EventBatch::empty(epoch)).unwrap();
//! }
//! let report = durable.full_report().clone();
//! drop(durable); // simulate the process dying
//!
//! let recovered = engine.recover(dir.path(), StoreConfig::default()).unwrap();
//! assert_eq!(recovered.epoch(), 5);
//! assert_eq!(recovered.full_report(), &report);
//! ```
//!
//! [`AnalysisSession`]: scout_core::AnalysisSession
//! [`DurableSession::commit`]: store::DurableSession::commit
//! [`DurableEngine::recover`]: store::DurableEngine::recover
//! [`StoreError`]: store::StoreError

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod digest;
pub mod journal;
pub mod store;
pub mod test_dir;

pub use anchor::{genesis_chain, Anchor, AnchorError};
pub use digest::{chain_next, sha256, Digest};
pub use journal::{
    decode_segment, decode_segment_prefix, JournalError, Segment, SegmentBuilder, SegmentHeader,
    SegmentPrefix,
};
pub use store::{
    verify_dir, CrashPlan, DurableEngine, DurableSession, StoreConfig, StoreError, StoreStats,
    StoreSummary,
};
