//! Snapshot anchor files: durable `Snapshot` frames bound to the journal's
//! hash chain.
//!
//! An anchor is one `Snapshot` (with an **empty** replay tail — the journal
//! *is* the tail) wrapped in a checksummed frame that also records the
//! running chain digest at the snapshot's epoch. Recovery restores the
//! newest anchor and replays the journal after it; the recorded chain value
//! is the cross-check that ties the two together — re-stamping any journal
//! record before the anchor while keeping the anchor bytes intact requires a
//! SHA-256 second preimage.
//!
//! # Layout
//!
//! ```text
//! anchor := magic "SCSA" (4) ∥ version u32 (4) ∥ crc u32 (4)
//!           ∥ epoch u64 (8) ∥ chain (32) ∥ snapshot bytes (rest)
//! ```
//!
//! `crc` covers everything after the 12-byte prologue. The snapshot bytes
//! are the ordinary `Snapshot::to_bytes` frame, which carries its own magic,
//! version and checksum — an anchor file therefore has no byte outside a
//! checksum's reach.
//!
//! The very first anchor a store writes (the *genesis* anchor, at the
//! session's opening epoch) also seeds the chain: its recorded chain value
//! must equal [`genesis_chain`] of its own snapshot bytes, which binds the
//! journal to the exact initial state it extends.

use std::fmt;

use scout_core::{Snapshot, SnapshotError};

use crate::digest::{sha256, Digest, Sha256};
use crate::journal::crc32;

/// Magic bytes opening every anchor file.
pub const ANCHOR_MAGIC: [u8; 4] = *b"SCSA";

/// Current anchor format version.
pub const ANCHOR_VERSION: u32 = 1;

/// Byte length of the anchor prologue (magic, version, crc).
pub const ANCHOR_PROLOGUE_LEN: usize = 12;

/// Why anchor bytes could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorError {
    /// Fewer bytes than the fixed frame.
    Truncated,
    /// The first four bytes are not [`ANCHOR_MAGIC`].
    BadMagic,
    /// A version this build does not speak.
    UnsupportedVersion {
        /// The version found in the prologue.
        version: u32,
    },
    /// The frame checksum does not match the frame bytes.
    ChecksumMismatch,
    /// The embedded snapshot frame is itself invalid.
    Snapshot(SnapshotError),
    /// The frame's epoch disagrees with the embedded snapshot's.
    EpochMismatch {
        /// Epoch the anchor frame claims.
        frame: u64,
        /// Epoch the embedded snapshot carries.
        snapshot: u64,
    },
    /// The embedded snapshot carries a replay tail (anchors must not — the
    /// journal is the tail).
    NonEmptyTail,
}

impl fmt::Display for AnchorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnchorError::Truncated => write!(f, "anchor shorter than its fixed frame"),
            AnchorError::BadMagic => write!(f, "anchor magic is not SCSA"),
            AnchorError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported anchor version {version} (want {ANCHOR_VERSION})"
                )
            }
            AnchorError::ChecksumMismatch => write!(f, "anchor checksum mismatch"),
            AnchorError::Snapshot(err) => write!(f, "embedded snapshot is invalid: {err}"),
            AnchorError::EpochMismatch { frame, snapshot } => write!(
                f,
                "anchor frame claims epoch {frame} but its snapshot is at epoch {snapshot}"
            ),
            AnchorError::NonEmptyTail => {
                write!(
                    f,
                    "anchor snapshot carries a replay tail (the journal is the tail)"
                )
            }
        }
    }
}

impl std::error::Error for AnchorError {}

/// A decoded snapshot anchor.
#[derive(Debug, Clone, PartialEq)]
pub struct Anchor {
    /// Epoch the snapshot covers.
    pub epoch: u64,
    /// Running journal chain digest at `epoch`.
    pub chain: Digest,
    /// The restorable snapshot (empty tail).
    pub snapshot: Snapshot,
}

impl Anchor {
    /// Wraps a tail-free snapshot and the chain digest at its epoch.
    pub fn new(snapshot: Snapshot, chain: Digest) -> Result<Self, AnchorError> {
        if !snapshot.tail().is_empty() {
            return Err(AnchorError::NonEmptyTail);
        }
        Ok(Anchor {
            epoch: snapshot.epoch(),
            chain,
            snapshot,
        })
    }

    /// Encodes the anchor, stamping its checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let snap = self.snapshot.to_bytes();
        let mut out = Vec::with_capacity(ANCHOR_PROLOGUE_LEN + 40 + snap.len());
        out.extend_from_slice(&ANCHOR_MAGIC);
        out.extend_from_slice(&ANCHOR_VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // crc placeholder
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.chain);
        out.extend_from_slice(&snap);
        let crc = crc32(&out[ANCHOR_PROLOGUE_LEN..]);
        out[8..12].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and fully validates an anchor frame.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AnchorError> {
        if bytes.len() < ANCHOR_PROLOGUE_LEN + 40 {
            return Err(AnchorError::Truncated);
        }
        if bytes[0..4] != ANCHOR_MAGIC {
            return Err(AnchorError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != ANCHOR_VERSION {
            return Err(AnchorError::UnsupportedVersion { version });
        }
        let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if crc32(&bytes[ANCHOR_PROLOGUE_LEN..]) != stored_crc {
            return Err(AnchorError::ChecksumMismatch);
        }
        let epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let chain: Digest = bytes[20..52].try_into().expect("32 bytes");
        let snapshot = Snapshot::from_bytes(&bytes[52..]).map_err(AnchorError::Snapshot)?;
        if snapshot.epoch() != epoch {
            return Err(AnchorError::EpochMismatch {
                frame: epoch,
                snapshot: snapshot.epoch(),
            });
        }
        if !snapshot.tail().is_empty() {
            return Err(AnchorError::NonEmptyTail);
        }
        Ok(Anchor {
            epoch,
            chain,
            snapshot,
        })
    }

    /// Whether this anchor is the store's genesis. `open_durable` always
    /// opens a fresh session, whose ingest counter starts at 0, so the
    /// genesis anchor is exactly the epoch-0 anchor: nothing precedes it and
    /// its chain value must be [`genesis_chain`] of its own snapshot bytes
    /// (periodic anchors are written only after at least one committed
    /// epoch, so they can never claim epoch 0).
    pub fn is_genesis(&self) -> bool {
        self.epoch == 0
    }
}

/// The chain seed for a store whose genesis snapshot encodes to
/// `snapshot_bytes`: `SHA-256("scout-store/v1/genesis\0" ∥
/// SHA-256(snapshot_bytes))`.
///
/// Recovery recomputes this for a genesis anchor, so even the chain's
/// starting value is bound to checksummed bytes — there is no unauthenticated
/// trust root a tampered store could hide behind.
pub fn genesis_chain(snapshot_bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"scout-store/v1/genesis\0");
    h.update(&sha256(snapshot_bytes));
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_core::ScoutEngine;
    use scout_fabric::Fabric;
    use scout_policy::sample;

    fn snapshot() -> Snapshot {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let engine = ScoutEngine::new();
        let session = engine.open_session(&fabric);
        session.checkpoint()
    }

    #[test]
    fn round_trip() {
        let snap = snapshot();
        let chain = genesis_chain(&snap.to_bytes());
        let anchor = Anchor::new(snap, chain).unwrap();
        let bytes = anchor.to_bytes();
        let decoded = Anchor::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, anchor);
        assert!(decoded.is_genesis());
        assert_eq!(decoded.chain, genesis_chain(&decoded.snapshot.to_bytes()));
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error() {
        let snap = snapshot();
        let chain = genesis_chain(&snap.to_bytes());
        let clean = Anchor::new(snap, chain).unwrap().to_bytes();
        for i in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[i] ^= 0x01;
            assert!(
                Anchor::from_bytes(&damaged).is_err(),
                "flip at byte {i} was accepted"
            );
        }
    }

    #[test]
    fn truncation_is_an_error() {
        let snap = snapshot();
        let chain = genesis_chain(&snap.to_bytes());
        let clean = Anchor::new(snap, chain).unwrap().to_bytes();
        for cut in 0..clean.len() {
            assert!(Anchor::from_bytes(&clean[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn errors_render() {
        for err in [
            AnchorError::Truncated,
            AnchorError::BadMagic,
            AnchorError::UnsupportedVersion { version: 3 },
            AnchorError::ChecksumMismatch,
            AnchorError::Snapshot(SnapshotError::BadMagic),
            AnchorError::EpochMismatch {
                frame: 1,
                snapshot: 2,
            },
            AnchorError::NonEmptyTail,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
