//! The filesystem layer: durable sessions, group commit, snapshot anchoring,
//! compaction, crash injection and tamper-evident recovery.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   journal/seg-<first_epoch:020>.scjl     append-only segments (journal.rs)
//!   snap/anchor-<epoch:020>.scsa           snapshot anchors (anchor.rs)
//!   snap/anchor-<epoch:020>.scsa.tmp       transient; removed on recovery
//! ```
//!
//! # Commit protocol
//!
//! [`DurableSession::append`] journals the batch (write-ahead), then applies
//! it to the in-memory session; [`DurableSession::commit`] fsyncs the active
//! segment — the group-commit boundary. [`DurableSession::ingest`] is
//! `append` + `commit` in one call. When the committed epoch has advanced
//! [`StoreConfig::snapshot_every`] epochs past the last anchor, `commit`
//! writes a new anchor (tmp → fsync → rename → dir fsync, so an anchor is
//! either fully present or invisible) and then compacts: segments whose
//! every record the anchor covers are deleted, as are superseded anchors.
//! The active segment rolls after [`StoreConfig::segment_max_records`]
//! records; rolling seals the old file with an fsync before the new header
//! is written.
//!
//! # Recovery state machine
//!
//! [`DurableEngine::recover`] scans the directory and **verifies every byte
//! of every file** before touching the engine:
//!
//! 1. decode every anchor (frame CRC, embedded snapshot CRC, epoch
//!    cross-checks; genesis anchors must match [`genesis_chain`] of their own
//!    snapshot bytes);
//! 2. decode every segment — strictly, except the final segment where a torn
//!    tail (an append a crash cut short) is truncated; a torn header left by
//!    a crashed segment creation is discarded the same way;
//! 3. verify segment contiguity (`first_epoch`, `prev_chain`) and that every
//!    anchor inside journal coverage records exactly the running chain
//!    digest at its epoch (the newest anchor is always inside coverage —
//!    that is enforced, not assumed); a *superseded* anchor left outside
//!    coverage by an interrupted compaction is CRC-checked but its chain
//!    digest has nothing left to be verified against, so recovery finishes
//!    the compaction's job and deletes it rather than trusting it;
//! 4. restore the newest anchor's snapshot through the ordinary engine
//!    restore path and replay the journal tail through ordinary `ingest`.
//!
//! Any complete-but-wrong byte anywhere — journal or snapshot — is a typed
//! [`StoreError`], never a panic and never a silent acceptance; only
//! incomplete trailing writes (crash evidence) are truncated, and only
//! stale superseded anchors (chain-unverifiable by construction, and never
//! restored from) are discarded.
//!
//! # Crash injection
//!
//! A [`CrashPlan`] arms a countdown over the store's durable file
//! operations (create, append, fsync, rename, remove, truncate, dir-fsync).
//! The fatal operation is *interrupted* — an append writes a seed-chosen
//! strict prefix, any other operation does nothing — and the store returns
//! [`StoreError::InjectedCrash`] and poisons itself, simulating SIGKILL at
//! that abort point. `scout-sim`'s crash soak and the kill-and-recover tests
//! drive exactly this hook.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use scout_core::{AnalysisSession, ReportDelta, ScoutEngine, ScoutReport, SessionError};
use scout_fabric::{EventBatch, Fabric, FabricProbe};

use crate::anchor::{genesis_chain, Anchor, AnchorError};
use crate::digest::Digest;
use crate::journal::{
    decode_segment, decode_segment_prefix, encode_record, JournalError, SegmentHeader,
    SegmentPrefix, SEGMENT_HEADER_LEN,
};

const JOURNAL_SUBDIR: &str = "journal";
const SNAP_SUBDIR: &str = "snap";

fn segment_name(first_epoch: u64) -> String {
    format!("seg-{first_epoch:020}.scjl")
}

fn anchor_name(epoch: u64) -> String {
    format!("anchor-{epoch:020}.scsa")
}

fn parse_fixed(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Tuning and fault-injection knobs for a durable session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Write a snapshot anchor once the committed epoch is this far past the
    /// last anchor. `0` disables periodic anchoring (the genesis anchor is
    /// always written).
    pub snapshot_every: u64,
    /// Roll the active segment after this many records (minimum 1).
    pub segment_max_records: u64,
    /// Delete journal segments and anchors a new anchor supersedes.
    pub compact: bool,
    /// Optional SIGKILL simulation: abort at a seeded durable-file-operation
    /// countdown.
    pub crash_plan: Option<CrashPlan>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            snapshot_every: 32,
            segment_max_records: 64,
            compact: true,
            crash_plan: None,
        }
    }
}

/// A process-internal abort point: the `abort_after_ops + 1`-th durable file
/// operation is interrupted mid-flight and the store poisons itself, exactly
/// as if the process had been SIGKILLed there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// How many durable file operations complete before the crash.
    pub abort_after_ops: u64,
    /// Seeds how much of the fatal append's bytes reach the file (a strict
    /// prefix — a tear, like a real partial write).
    pub partial_seed: u64,
}

/// Why a store operation failed. Every recovery-time defect is typed: a
/// damaged store never panics and is never silently accepted.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// Which operation (`"create"`, `"append"`, `"sync"`, …).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The directory does not have a store's `journal/` + `snap/` layout.
    NotAStore {
        /// The directory checked.
        path: PathBuf,
    },
    /// `open_durable` refuses to clobber an existing store.
    AlreadyExists {
        /// The directory that already holds a store.
        path: PathBuf,
    },
    /// A file that is neither a segment, an anchor nor a transient temp.
    StrayFile {
        /// The unexpected file.
        path: PathBuf,
    },
    /// The store has no snapshot anchor at all.
    MissingAnchor,
    /// An anchor file failed to decode.
    Anchor {
        /// The anchor file.
        path: PathBuf,
        /// The decode failure.
        source: AnchorError,
    },
    /// An anchor file's name disagrees with the epoch inside it.
    AnchorNameMismatch {
        /// The anchor file.
        path: PathBuf,
        /// The epoch its frame carries.
        epoch: u64,
    },
    /// A genesis anchor whose chain value is not derived from its own
    /// snapshot bytes.
    GenesisChainMismatch {
        /// The genesis anchor's epoch.
        epoch: u64,
    },
    /// A segment file failed to decode.
    Journal {
        /// The segment file.
        path: PathBuf,
        /// The decode failure.
        source: JournalError,
    },
    /// A segment file's name disagrees with the `first_epoch` in its header.
    SegmentNameMismatch {
        /// The segment file.
        path: PathBuf,
        /// The `first_epoch` its header carries.
        first_epoch: u64,
    },
    /// Segments do not cover a contiguous epoch range.
    SegmentOrder {
        /// Last epoch of the earlier segment.
        prev_end: u64,
        /// First epoch of the later segment.
        next_first: u64,
    },
    /// Adjacent segments whose chain digests do not link.
    ChainDiscontinuity {
        /// The boundary epoch where the chain breaks.
        at_epoch: u64,
    },
    /// An anchor inside journal coverage records a chain digest that is not
    /// the journal's running digest at that epoch.
    AnchorChainMismatch {
        /// The anchor's epoch.
        epoch: u64,
    },
    /// The journal starts after the newest anchor — committed epochs are
    /// missing.
    MissingEpochs {
        /// First epoch the journal holds.
        journal_first: u64,
        /// The newest anchor's epoch.
        anchor_epoch: u64,
    },
    /// The newest anchor claims an epoch past the end of the journal.
    AnchorBeyondJournal {
        /// The newest anchor's epoch.
        anchor_epoch: u64,
        /// Last epoch the journal holds.
        journal_end: u64,
    },
    /// The analysis session rejected a batch (validation or replay).
    Session(SessionError),
    /// The armed [`CrashPlan`] fired: the simulated SIGKILL hit.
    InjectedCrash,
    /// The store already crashed (or failed) and refuses further writes.
    Poisoned,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} failed on {}: {source}", path.display())
            }
            StoreError::NotAStore { path } => {
                write!(f, "{} is not a scout-store directory", path.display())
            }
            StoreError::AlreadyExists { path } => {
                write!(f, "{} already holds a store", path.display())
            }
            StoreError::StrayFile { path } => {
                write!(f, "unexpected file {} in store", path.display())
            }
            StoreError::MissingAnchor => write!(f, "store has no snapshot anchor"),
            StoreError::Anchor { path, source } => {
                write!(f, "anchor {} is invalid: {source}", path.display())
            }
            StoreError::AnchorNameMismatch { path, epoch } => write!(
                f,
                "anchor {} carries epoch {epoch}, which disagrees with its name",
                path.display()
            ),
            StoreError::GenesisChainMismatch { epoch } => write!(
                f,
                "genesis anchor at epoch {epoch} does not seed its own chain"
            ),
            StoreError::Journal { path, source } => {
                write!(f, "segment {} is invalid: {source}", path.display())
            }
            StoreError::SegmentNameMismatch { path, first_epoch } => write!(
                f,
                "segment {} starts at epoch {first_epoch}, which disagrees with its name",
                path.display()
            ),
            StoreError::SegmentOrder {
                prev_end,
                next_first,
            } => write!(
                f,
                "segments are not contiguous: epoch {prev_end} is followed by {next_first}"
            ),
            StoreError::ChainDiscontinuity { at_epoch } => {
                write!(
                    f,
                    "hash chain breaks at the segment boundary after epoch {at_epoch}"
                )
            }
            StoreError::AnchorChainMismatch { epoch } => write!(
                f,
                "anchor at epoch {epoch} records a chain digest the journal does not produce"
            ),
            StoreError::MissingEpochs {
                journal_first,
                anchor_epoch,
            } => write!(
                f,
                "journal starts at epoch {journal_first}, losing epochs after anchor {anchor_epoch}"
            ),
            StoreError::AnchorBeyondJournal {
                anchor_epoch,
                journal_end,
            } => write!(
                f,
                "anchor at epoch {anchor_epoch} is past the journal end {journal_end}"
            ),
            StoreError::Session(err) => write!(f, "session rejected a batch: {err}"),
            StoreError::InjectedCrash => write!(f, "injected crash: simulated SIGKILL abort point"),
            StoreError::Poisoned => write!(f, "store is poisoned after a crash or write failure"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Anchor { source, .. } => Some(source),
            StoreError::Journal { source, .. } => Some(source),
            StoreError::Session(source) => Some(source),
            _ => None,
        }
    }
}

/// Running operation counters for one durable session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Batches appended to the journal.
    pub appends: u64,
    /// Commit calls (group-commit boundaries).
    pub commits: u64,
    /// fsyncs of the active segment.
    pub syncs: u64,
    /// Segment files created (excluding the one `open_durable` seeds).
    pub segments_rolled: u64,
    /// Segment files deleted by compaction.
    pub segments_removed: u64,
    /// Snapshot anchors written (excluding genesis).
    pub anchors_written: u64,
    /// Anchor files deleted by compaction.
    pub anchors_removed: u64,
    /// Journal bytes appended (frames, not headers).
    pub bytes_appended: u64,
    /// Batches replayed through `ingest` during recovery.
    pub replayed_on_recover: u64,
    /// Torn tail bytes truncated or discarded during recovery.
    pub torn_bytes_truncated: u64,
}

/// What [`verify_dir`] certifies about a store without restoring it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Last committed epoch the store can recover to.
    pub last_epoch: u64,
    /// Epoch of the newest snapshot anchor.
    pub anchor_epoch: u64,
    /// Number of valid segment files.
    pub segments: usize,
    /// Number of valid anchor files inside journal coverage (each
    /// chain-checked against the journal's running digest at its epoch).
    pub anchors: usize,
    /// Superseded anchors whose epoch falls outside journal coverage — the
    /// leftovers of a compaction interrupted between removing the segments
    /// that covered them and removing the anchors themselves. Their CRCs are
    /// checked but their chain digests have nothing left to be verified
    /// against, so recovery deletes them as crash evidence.
    pub stale_anchors: usize,
    /// Journal records verified (including ones the anchor already covers).
    pub records: usize,
    /// Torn trailing bytes a recovery would truncate.
    pub torn_bytes: u64,
    /// Running chain digest at `last_epoch`.
    pub chain: Digest,
}

// ---------------------------------------------------------------------------
// Crash-injecting file operations
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct StoreFs {
    crash: Option<CrashState>,
}

#[derive(Debug)]
struct CrashState {
    remaining: u64,
    partial_seed: u64,
    poisoned: bool,
}

fn io_err<'p>(op: &'static str, path: &'p Path) -> impl FnOnce(std::io::Error) -> StoreError + 'p {
    move |source| StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

impl StoreFs {
    fn new(plan: Option<CrashPlan>) -> Self {
        StoreFs {
            crash: plan.map(|p| CrashState {
                remaining: p.abort_after_ops,
                partial_seed: p.partial_seed,
                poisoned: false,
            }),
        }
    }

    /// Advances the op countdown. `Ok(true)` means *this* operation is the
    /// abort point: it must be interrupted and the store poisoned.
    fn tick(&mut self) -> Result<bool, StoreError> {
        let Some(state) = self.crash.as_mut() else {
            return Ok(false);
        };
        if state.poisoned {
            return Err(StoreError::Poisoned);
        }
        if state.remaining == 0 {
            state.poisoned = true;
            return Ok(true);
        }
        state.remaining -= 1;
        Ok(false)
    }

    /// How many bytes of a fatal `len`-byte append reach the file: a
    /// seed-derived strict prefix.
    fn partial_len(&mut self, len: usize) -> usize {
        let Some(state) = self.crash.as_mut() else {
            return 0;
        };
        // xorshift* step so consecutive crashes tear at different offsets.
        let mut x = state.partial_seed | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.partial_seed = x;
        if len == 0 {
            0
        } else {
            (x % len as u64) as usize
        }
    }

    fn create(&mut self, path: &Path) -> Result<File, StoreError> {
        if self.tick()? {
            return Err(StoreError::InjectedCrash);
        }
        OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(io_err("create", path))
    }

    fn append(&mut self, file: &mut File, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        if self.tick()? {
            let keep = self.partial_len(bytes.len());
            // The torn prefix reaches the file — that is what makes the
            // abort point interesting for recovery.
            file.write_all(&bytes[..keep])
                .map_err(io_err("append", path))?;
            let _ = file.sync_data();
            return Err(StoreError::InjectedCrash);
        }
        file.write_all(bytes).map_err(io_err("append", path))
    }

    fn sync(&mut self, file: &File, path: &Path) -> Result<(), StoreError> {
        if self.tick()? {
            return Err(StoreError::InjectedCrash);
        }
        file.sync_data().map_err(io_err("sync", path))
    }

    fn sync_dir(&mut self, dir: &Path) -> Result<(), StoreError> {
        if self.tick()? {
            return Err(StoreError::InjectedCrash);
        }
        let handle = File::open(dir).map_err(io_err("open-dir", dir))?;
        handle.sync_all().map_err(io_err("sync-dir", dir))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError> {
        if self.tick()? {
            return Err(StoreError::InjectedCrash);
        }
        fs::rename(from, to).map_err(io_err("rename", from))
    }

    fn remove(&mut self, path: &Path) -> Result<(), StoreError> {
        if self.tick()? {
            return Err(StoreError::InjectedCrash);
        }
        fs::remove_file(path).map_err(io_err("remove", path))
    }

    fn truncate(&mut self, path: &Path, keep: u64) -> Result<(), StoreError> {
        if self.tick()? {
            return Err(StoreError::InjectedCrash);
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(io_err("truncate", path))?;
        file.set_len(keep).map_err(io_err("truncate", path))?;
        file.sync_data().map_err(io_err("truncate", path))
    }
}

// ---------------------------------------------------------------------------
// Scan: read-only, byte-complete verification of a store directory
// ---------------------------------------------------------------------------

struct ScannedSegment {
    path: PathBuf,
    prefix: SegmentPrefix,
}

struct Scan {
    newest: Anchor,
    /// Valid anchors retained (chain-checked against the journal).
    anchors: usize,
    /// Superseded anchors outside journal coverage — leftovers of an
    /// interrupted compaction, scheduled for removal.
    stale_anchors: usize,
    segments: Vec<ScannedSegment>,
    /// Transient files (and a torn-header final segment) recovery removes.
    remove: Vec<PathBuf>,
    /// Torn tail in the final segment: keep only this many bytes.
    truncate: Option<(PathBuf, u64)>,
    /// Batches after the newest anchor, in epoch order.
    replay: Vec<EventBatch>,
    chain: Digest,
    last_epoch: u64,
    torn_bytes: u64,
    records: usize,
}

fn sorted_entries(dir: &Path) -> Result<Vec<(String, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(io_err("read-dir", dir))?;
    for entry in entries {
        let entry = entry.map_err(io_err("read-dir", dir))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        out.push((name, entry.path()));
    }
    out.sort();
    Ok(out)
}

fn scan_dir(dir: &Path) -> Result<Scan, StoreError> {
    let journal_dir = dir.join(JOURNAL_SUBDIR);
    let snap_dir = dir.join(SNAP_SUBDIR);
    if !journal_dir.is_dir() || !snap_dir.is_dir() {
        return Err(StoreError::NotAStore {
            path: dir.to_path_buf(),
        });
    }

    let mut remove = Vec::new();

    // --- anchors -----------------------------------------------------------
    let mut anchors: BTreeMap<u64, (Anchor, PathBuf)> = BTreeMap::new();
    for (name, path) in sorted_entries(&snap_dir)? {
        if name.ends_with(".tmp") {
            remove.push(path);
            continue;
        }
        let Some(epoch) = parse_fixed(&name, "anchor-", ".scsa") else {
            return Err(StoreError::StrayFile { path });
        };
        let bytes = fs::read(&path).map_err(io_err("read", &path))?;
        let anchor = Anchor::from_bytes(&bytes).map_err(|source| StoreError::Anchor {
            path: path.clone(),
            source,
        })?;
        if anchor.epoch != epoch {
            return Err(StoreError::AnchorNameMismatch {
                path,
                epoch: anchor.epoch,
            });
        }
        if anchor.is_genesis() && anchor.chain != genesis_chain(&anchor.snapshot.to_bytes()) {
            return Err(StoreError::GenesisChainMismatch {
                epoch: anchor.epoch,
            });
        }
        anchors.insert(epoch, (anchor, path));
    }
    let Some((_, (newest, _))) = anchors.pop_last() else {
        return Err(StoreError::MissingAnchor);
    };

    // --- segments ----------------------------------------------------------
    let mut named: Vec<(u64, PathBuf)> = Vec::new();
    for (name, path) in sorted_entries(&journal_dir)? {
        let Some(first_epoch) = parse_fixed(&name, "seg-", ".scjl") else {
            return Err(StoreError::StrayFile { path });
        };
        named.push((first_epoch, path));
    }
    named.sort();

    let mut segments: Vec<ScannedSegment> = Vec::new();
    let mut torn_bytes = 0u64;
    let mut truncate = None;
    let count = named.len();
    for (i, (name_epoch, path)) in named.into_iter().enumerate() {
        let bytes = fs::read(&path).map_err(io_err("read", &path))?;
        let last = i + 1 == count;
        if last && bytes.len() < SEGMENT_HEADER_LEN {
            // A crash during segment creation: the header append tore. Only
            // tolerable in tail position — anywhere else it is damage.
            torn_bytes += bytes.len() as u64;
            remove.push(path);
            continue;
        }
        let prefix = if last {
            decode_segment_prefix(&bytes)
        } else {
            decode_segment(&bytes).map(|segment| SegmentPrefix {
                consumed: bytes.len(),
                torn: false,
                segment,
            })
        }
        .map_err(|source| StoreError::Journal {
            path: path.clone(),
            source,
        })?;
        if prefix.segment.header.first_epoch != name_epoch {
            return Err(StoreError::SegmentNameMismatch {
                path,
                first_epoch: prefix.segment.header.first_epoch,
            });
        }
        if prefix.torn {
            torn_bytes += bytes.len() as u64 - prefix.consumed as u64;
            truncate = Some((path.clone(), prefix.consumed as u64));
        }
        segments.push(ScannedSegment { path, prefix });
    }

    // --- contiguity + chain ------------------------------------------------
    for pair in segments.windows(2) {
        let a = &pair[0].prefix.segment;
        let b = &pair[1].prefix.segment;
        if b.header.first_epoch != a.end_epoch() + 1 {
            return Err(StoreError::SegmentOrder {
                prev_end: a.end_epoch(),
                next_first: b.header.first_epoch,
            });
        }
        if b.header.prev_chain != a.end_chain() {
            return Err(StoreError::ChainDiscontinuity {
                at_epoch: a.end_epoch(),
            });
        }
    }

    let records: usize = segments
        .iter()
        .map(|s| s.prefix.segment.records.len())
        .sum();

    let mut stale_anchors = 0usize;
    let (chain, last_epoch) = if let (Some(first), Some(last)) = (segments.first(), segments.last())
    {
        let journal_first = first.prefix.segment.header.first_epoch;
        let journal_end = last.prefix.segment.end_epoch();
        if newest.epoch + 1 < journal_first {
            return Err(StoreError::MissingEpochs {
                journal_first,
                anchor_epoch: newest.epoch,
            });
        }
        if newest.epoch > journal_end {
            return Err(StoreError::AnchorBeyondJournal {
                anchor_epoch: newest.epoch,
                journal_end,
            });
        }
        // Every anchor inside journal coverage must record exactly the
        // running chain digest at its epoch — the splice detector.
        let chain_at = |epoch: u64| -> Option<Digest> {
            if epoch + 1 == journal_first {
                return Some(first.prefix.segment.header.prev_chain);
            }
            for scanned in &segments {
                let seg = &scanned.prefix.segment;
                if epoch >= seg.header.first_epoch && epoch <= seg.end_epoch() {
                    let idx = (epoch - seg.header.first_epoch) as usize;
                    return seg.records.get(idx).map(|r| r.chain);
                }
            }
            None
        };
        let check = |anchor: &Anchor| -> Result<(), StoreError> {
            match chain_at(anchor.epoch) {
                Some(running) if running == anchor.chain => Ok(()),
                _ => Err(StoreError::AnchorChainMismatch {
                    epoch: anchor.epoch,
                }),
            }
        };
        for (anchor, path) in anchors.values() {
            if anchor.epoch + 1 < journal_first {
                // A compaction interrupted between deleting the segments
                // that covered this superseded anchor and deleting the
                // anchor itself. Its chain digest has nothing left to be
                // verified against, so finish the compaction's job: delete
                // it rather than trust it.
                stale_anchors += 1;
                remove.push(path.clone());
                continue;
            }
            // Non-newest anchors precede `newest`, which the guards above
            // pin inside coverage — so this one is covered too.
            check(anchor)?;
        }
        check(&newest)?;
        (last.prefix.segment.end_chain(), journal_end)
    } else {
        // No (surviving) segments: the store crashed right after an anchor
        // became durable. The anchor is the whole truth; older anchors have
        // no journal left to be checked against — compaction leftovers,
        // removed with the rest of the crash evidence.
        for (_, path) in anchors.values() {
            stale_anchors += 1;
            remove.push(path.clone());
        }
        (newest.chain, newest.epoch)
    };

    // --- replay tail -------------------------------------------------------
    let mut replay = Vec::new();
    for scanned in &segments {
        for record in &scanned.prefix.segment.records {
            if record.batch.epoch > newest.epoch {
                replay.push(record.batch.clone());
            }
        }
    }

    Ok(Scan {
        // +1 for `newest`, popped off the map above.
        anchors: anchors.len() - stale_anchors + 1,
        stale_anchors,
        newest,
        segments,
        remove,
        truncate,
        replay,
        chain,
        last_epoch,
        torn_bytes,
        records,
    })
}

/// Verifies every byte of every file in a store directory — anchors,
/// segment headers, record frames, payloads, the full hash chain and the
/// anchor cross-checks — without restoring a session.
///
/// This is exactly the validation [`DurableEngine::recover`] performs before
/// it touches the engine, so a store that verifies cleanly will recover (and
/// vice versa: any flipped byte fails both, with the same typed error).
///
/// One caveat, reported rather than hidden: a superseded anchor stranded
/// outside journal coverage by an interrupted compaction has a valid CRC but
/// a chain digest with nothing left to cross-check it against. Such anchors
/// are counted in [`StoreSummary::stale_anchors`] (never in
/// [`StoreSummary::anchors`]), are never restored from, and recovery deletes
/// them.
pub fn verify_dir(dir: &Path) -> Result<StoreSummary, StoreError> {
    let scan = scan_dir(dir)?;
    Ok(StoreSummary {
        last_epoch: scan.last_epoch,
        anchor_epoch: scan.newest.epoch,
        segments: scan.segments.len(),
        anchors: scan.anchors,
        stale_anchors: scan.stale_anchors,
        records: scan.records,
        torn_bytes: scan.torn_bytes,
        chain: scan.chain,
    })
}

// ---------------------------------------------------------------------------
// DurableSession
// ---------------------------------------------------------------------------

/// An [`AnalysisSession`] whose every accepted batch is journaled to disk
/// before it is applied — crash-recoverable via [`DurableEngine::recover`].
///
/// Mutating access to the inner session is deliberately not exposed: every
/// epoch must flow through [`DurableSession::append`] /
/// [`DurableSession::ingest`] so the journal stays the complete history.
pub struct DurableSession {
    session: AnalysisSession,
    dir: PathBuf,
    journal_dir: PathBuf,
    snap_dir: PathBuf,
    config: StoreConfig,
    fs: StoreFs,
    active: File,
    active_path: PathBuf,
    active_records: u64,
    chain: Digest,
    committed_epoch: u64,
    anchor_epoch: u64,
    staged: u64,
    poisoned: bool,
    stats: StoreStats,
}

/// `ScoutEngine` extension: opening and recovering durable sessions.
///
/// Lives on a trait (re-exported from the facade crate) because the store
/// depends on `scout-core`, not the other way around.
pub trait DurableEngine {
    /// Opens a fresh durable session on `fabric`, rooted at `dir`: creates
    /// the `journal/` + `snap/` layout, writes the genesis snapshot anchor
    /// and seeds the first journal segment. Refuses a directory that already
    /// holds a store.
    fn open_durable(
        &self,
        fabric: &Fabric,
        dir: &Path,
        config: StoreConfig,
    ) -> Result<DurableSession, StoreError>;

    /// Recovers the session persisted at `dir`: verifies every byte of every
    /// store file (any flipped byte or spliced record is a typed
    /// [`StoreError`]), truncates crash-torn tails, restores the newest
    /// anchor and replays the journal tail through ordinary `ingest` — the
    /// result is bit-identical to the uninterrupted session at the last
    /// committed epoch.
    fn recover(&self, dir: &Path, config: StoreConfig) -> Result<DurableSession, StoreError>;
}

fn write_anchor(fs: &mut StoreFs, snap_dir: &Path, anchor: &Anchor) -> Result<(), StoreError> {
    let final_path = snap_dir.join(anchor_name(anchor.epoch));
    let tmp = snap_dir.join(format!("{}.tmp", anchor_name(anchor.epoch)));
    let mut file = fs.create(&tmp)?;
    fs.append(&mut file, &tmp, &anchor.to_bytes())?;
    fs.sync(&file, &tmp)?;
    drop(file);
    fs.rename(&tmp, &final_path)?;
    fs.sync_dir(snap_dir)
}

fn create_segment(
    fs: &mut StoreFs,
    journal_dir: &Path,
    first_epoch: u64,
    prev_chain: Digest,
) -> Result<(File, PathBuf), StoreError> {
    let path = journal_dir.join(segment_name(first_epoch));
    let mut file = fs.create(&path)?;
    let header = SegmentHeader {
        first_epoch,
        prev_chain,
    };
    fs.append(&mut file, &path, &header.to_bytes())?;
    fs.sync(&file, &path)?;
    fs.sync_dir(journal_dir)?;
    Ok((file, path))
}

impl DurableEngine for ScoutEngine {
    fn open_durable(
        &self,
        fabric: &Fabric,
        dir: &Path,
        config: StoreConfig,
    ) -> Result<DurableSession, StoreError> {
        let journal_dir = dir.join(JOURNAL_SUBDIR);
        let snap_dir = dir.join(SNAP_SUBDIR);
        if snap_dir.exists() {
            return Err(StoreError::AlreadyExists {
                path: dir.to_path_buf(),
            });
        }
        fs::create_dir_all(&journal_dir).map_err(io_err("create-dir", &journal_dir))?;
        fs::create_dir_all(&snap_dir).map_err(io_err("create-dir", &snap_dir))?;

        let mut store_fs = StoreFs::new(config.crash_plan);
        let session = self.open_session(fabric);
        let snapshot = session.checkpoint();
        let open_epoch = snapshot.epoch();
        let chain = genesis_chain(&snapshot.to_bytes());
        let anchor = Anchor::new(snapshot, chain).expect("a fresh checkpoint has no tail");
        write_anchor(&mut store_fs, &snap_dir, &anchor)?;
        let (active, active_path) =
            create_segment(&mut store_fs, &journal_dir, open_epoch + 1, chain)?;

        Ok(DurableSession {
            session,
            dir: dir.to_path_buf(),
            journal_dir,
            snap_dir,
            config,
            fs: store_fs,
            active,
            active_path,
            active_records: 0,
            chain,
            committed_epoch: open_epoch,
            anchor_epoch: open_epoch,
            staged: 0,
            poisoned: false,
            stats: StoreStats::default(),
        })
    }

    fn recover(&self, dir: &Path, config: StoreConfig) -> Result<DurableSession, StoreError> {
        let journal_dir = dir.join(JOURNAL_SUBDIR);
        let snap_dir = dir.join(SNAP_SUBDIR);
        let scan = scan_dir(dir)?;

        // Verification passed: restore through the ordinary engine path and
        // replay the tail through ordinary ingest.
        let mut session = self
            .restore(&scan.newest.snapshot)
            .map_err(StoreError::Session)?;
        let mut stats = StoreStats {
            torn_bytes_truncated: scan.torn_bytes,
            ..StoreStats::default()
        };
        for batch in scan.replay {
            session.ingest(batch).map_err(StoreError::Session)?;
            stats.replayed_on_recover += 1;
        }
        debug_assert_eq!(session.epoch(), scan.last_epoch);

        // Clean up crash evidence (transient files, torn tails) with the
        // same counted, interruptible operations as steady-state writes.
        let mut store_fs = StoreFs::new(config.crash_plan);
        let had_removals = !scan.remove.is_empty();
        for path in &scan.remove {
            store_fs.remove(path)?;
        }
        if let Some((path, keep)) = &scan.truncate {
            store_fs.truncate(path, *keep)?;
        }
        if had_removals {
            store_fs.sync_dir(&journal_dir)?;
            store_fs.sync_dir(&snap_dir)?;
        }

        let (active, active_path, active_records) = if let Some(last) = scan.segments.last() {
            let file = OpenOptions::new()
                .append(true)
                .open(&last.path)
                .map_err(io_err("open", &last.path))?;
            (
                file,
                last.path.clone(),
                last.prefix.segment.records.len() as u64,
            )
        } else {
            // The store crashed right after an anchor became durable and
            // before the next segment existed: seed a fresh active segment.
            let (file, path) =
                create_segment(&mut store_fs, &journal_dir, scan.last_epoch + 1, scan.chain)?;
            (file, path, 0)
        };

        Ok(DurableSession {
            session,
            dir: dir.to_path_buf(),
            journal_dir,
            snap_dir,
            config,
            fs: store_fs,
            active,
            active_path,
            active_records,
            chain: scan.chain,
            committed_epoch: scan.last_epoch,
            anchor_epoch: scan.newest.epoch,
            staged: 0,
            poisoned: false,
            stats,
        })
    }
}

impl DurableSession {
    /// Journals one batch (write-ahead) and applies it to the session. The
    /// batch is durable only after the next [`DurableSession::commit`].
    pub fn append(&mut self, batch: EventBatch) -> Result<ReportDelta, StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        // Both refusals run before any byte reaches a file and neither
        // poisons the store: an oversized batch would journal a record
        // recovery is required to reject ([`JournalError::OversizedPayload`]
        // mirrors the decode-side cap), and the journal only ever holds
        // batches the session accepted.
        let encoded = encode_record(&self.chain, &batch).map_err(|source| StoreError::Journal {
            path: self.active_path.clone(),
            source,
        })?;
        self.session
            .validate_batch(&batch)
            .map_err(StoreError::Session)?;
        match self.append_inner(batch, encoded) {
            Ok(delta) => Ok(delta),
            Err(err) => {
                self.poisoned = true;
                Err(err)
            }
        }
    }

    fn append_inner(
        &mut self,
        batch: EventBatch,
        encoded: (Vec<u8>, Digest),
    ) -> Result<ReportDelta, StoreError> {
        // Rolling does not disturb the chain, so the frame encoded before
        // the roll decision is the frame either segment gets.
        if self.active_records >= self.config.segment_max_records.max(1) {
            self.roll()?;
        }
        let (frame, chain) = encoded;
        self.fs
            .append(&mut self.active, &self.active_path, &frame)?;
        self.chain = chain;
        self.active_records += 1;
        self.staged += 1;
        self.stats.appends += 1;
        self.stats.bytes_appended += frame.len() as u64;
        self.session.ingest(batch).map_err(StoreError::Session)
    }

    fn roll(&mut self) -> Result<(), StoreError> {
        // Seal the active segment: everything staged becomes durable.
        self.fs.sync(&self.active, &self.active_path)?;
        self.stats.syncs += 1;
        self.committed_epoch = self.session.epoch();
        self.staged = 0;
        let first = self.session.epoch() + 1;
        let (file, path) = create_segment(&mut self.fs, &self.journal_dir, first, self.chain)?;
        self.active = file;
        self.active_path = path;
        self.active_records = 0;
        self.stats.segments_rolled += 1;
        Ok(())
    }

    /// The group-commit boundary: fsyncs every staged append, then writes a
    /// snapshot anchor (and compacts) if the committed epoch has advanced
    /// far enough past the last anchor.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        match self.commit_inner() {
            Ok(()) => Ok(()),
            Err(err) => {
                self.poisoned = true;
                Err(err)
            }
        }
    }

    fn commit_inner(&mut self) -> Result<(), StoreError> {
        if self.staged > 0 {
            self.fs.sync(&self.active, &self.active_path)?;
            self.stats.syncs += 1;
            self.committed_epoch = self.session.epoch();
            self.staged = 0;
        }
        self.stats.commits += 1;
        if self.config.snapshot_every > 0
            && self.committed_epoch - self.anchor_epoch >= self.config.snapshot_every
        {
            self.write_anchor_and_compact()?;
        }
        Ok(())
    }

    fn write_anchor_and_compact(&mut self) -> Result<(), StoreError> {
        let snapshot = self.session.checkpoint();
        debug_assert_eq!(snapshot.epoch(), self.committed_epoch);
        let anchor = Anchor::new(snapshot, self.chain).expect("checkpoints have no tail");
        write_anchor(&mut self.fs, &self.snap_dir, &anchor)?;
        self.anchor_epoch = anchor.epoch;
        self.stats.anchors_written += 1;
        if self.config.compact {
            self.compact()?;
        }
        Ok(())
    }

    /// Deletes journal segments whose every record the newest anchor covers
    /// (never the active segment) and anchor files the newest supersedes.
    fn compact(&mut self) -> Result<(), StoreError> {
        let mut seg_names: Vec<(u64, PathBuf)> = Vec::new();
        for (name, path) in sorted_entries(&self.journal_dir)? {
            if let Some(first) = parse_fixed(&name, "seg-", ".scjl") {
                seg_names.push((first, path));
            }
        }
        seg_names.sort();
        let mut removed_segments = false;
        for pair in seg_names.windows(2) {
            // The segment before `pair[1]` ends at `pair[1].first - 1`; it
            // is disposable once the anchor covers that epoch. The active
            // (last) segment never appears as `pair[0]`.
            let (_, path) = &pair[0];
            let next_first = pair[1].0;
            if next_first <= self.anchor_epoch + 1 && *path != self.active_path {
                self.fs.remove(path)?;
                self.stats.segments_removed += 1;
                removed_segments = true;
            }
        }
        if removed_segments {
            self.fs.sync_dir(&self.journal_dir)?;
        }

        let mut removed_anchors = false;
        for (name, path) in sorted_entries(&self.snap_dir)? {
            if let Some(epoch) = parse_fixed(&name, "anchor-", ".scsa") {
                if epoch < self.anchor_epoch {
                    self.fs.remove(&path)?;
                    self.stats.anchors_removed += 1;
                    removed_anchors = true;
                }
            }
        }
        if removed_anchors {
            self.fs.sync_dir(&self.snap_dir)?;
        }
        Ok(())
    }

    /// `append` + `commit` in one call: the batch is durable on return.
    pub fn ingest(&mut self, batch: EventBatch) -> Result<ReportDelta, StoreError> {
        let delta = self.append(batch)?;
        self.commit()?;
        Ok(delta)
    }

    /// Observes `fabric` through `probe` and ingests the resulting events as
    /// the next epoch — the durable counterpart of
    /// [`AnalysisSession::ingest_observation`].
    pub fn ingest_observation(
        &mut self,
        probe: &mut FabricProbe,
        fabric: &Fabric,
    ) -> Result<ReportDelta, StoreError> {
        let events = probe.observe(fabric);
        let batch = EventBatch::new(self.session.next_epoch(), events);
        self.ingest(batch)
    }

    /// Read-only view of the inner analysis session.
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// The session's current epoch (may be ahead of
    /// [`DurableSession::committed_epoch`] between `append` and `commit`).
    pub fn epoch(&self) -> u64 {
        self.session.epoch()
    }

    /// The epoch the next ingested batch must carry.
    pub fn next_epoch(&self) -> u64 {
        self.session.next_epoch()
    }

    /// The current full report.
    pub fn full_report(&self) -> &ScoutReport {
        self.session.full_report()
    }

    /// Last epoch guaranteed durable (fsynced).
    pub fn committed_epoch(&self) -> u64 {
        self.committed_epoch
    }

    /// Epoch of the newest snapshot anchor on disk.
    pub fn anchor_epoch(&self) -> u64 {
        self.anchor_epoch
    }

    /// Running hash-chain digest after the last appended record.
    pub fn chain(&self) -> Digest {
        self.chain
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's operation counters.
    pub fn store_stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Whether a crash (injected or real write failure) has poisoned the
    /// store. A poisoned store refuses every further write; drop it and
    /// [`DurableEngine::recover`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir::TestDir;
    use scout_policy::sample;

    fn fabric() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    fn config() -> StoreConfig {
        StoreConfig {
            snapshot_every: 4,
            segment_max_records: 3,
            ..StoreConfig::default()
        }
    }

    /// Drives `n` empty epochs through a durable session.
    fn drive(ds: &mut DurableSession, n: u64) {
        for _ in 0..n {
            ds.ingest(EventBatch::empty(ds.next_epoch())).unwrap();
        }
    }

    #[test]
    fn open_ingest_drop_recover_is_bit_identical() {
        let dir = TestDir::new("store-roundtrip");
        let mut fabric = fabric();
        let engine = ScoutEngine::new();
        let mut ds = engine.open_durable(&fabric, dir.path(), config()).unwrap();
        let mut probe = FabricProbe::new(&fabric);
        for _ in 0..10 {
            fabric.evict_tcam(sample::S2, 1, false);
            ds.ingest_observation(&mut probe, &fabric).unwrap();
        }
        let report = ds.full_report().clone();
        let epoch = ds.epoch();
        drop(ds);

        let recovered = engine.recover(dir.path(), StoreConfig::default()).unwrap();
        assert_eq!(recovered.epoch(), epoch);
        assert_eq!(recovered.full_report(), &report);
        assert_eq!(recovered.committed_epoch(), epoch);
    }

    #[test]
    fn open_refuses_existing_store() {
        let dir = TestDir::new("store-exists");
        let fabric = fabric();
        let engine = ScoutEngine::new();
        let ds = engine.open_durable(&fabric, dir.path(), config()).unwrap();
        drop(ds);
        assert!(matches!(
            engine.open_durable(&fabric, dir.path(), config()),
            Err(StoreError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn recover_of_non_store_is_typed() {
        let dir = TestDir::new("store-nonstore");
        let engine = ScoutEngine::new();
        assert!(matches!(
            engine.recover(dir.path(), StoreConfig::default()),
            Err(StoreError::NotAStore { .. })
        ));
    }

    #[test]
    fn compaction_keeps_only_needed_segments_and_newest_anchor() {
        let dir = TestDir::new("store-compact");
        let fabric = fabric();
        let engine = ScoutEngine::new();
        let mut ds = engine.open_durable(&fabric, dir.path(), config()).unwrap();
        drive(&mut ds, 20);
        let stats = *ds.store_stats();
        assert!(stats.anchors_written >= 4, "anchors: {stats:?}");
        assert!(stats.segments_removed > 0, "compaction ran: {stats:?}");
        let report = ds.full_report().clone();
        drop(ds);

        let summary = verify_dir(dir.path()).unwrap();
        assert_eq!(summary.last_epoch, 20);
        assert_eq!(summary.anchors, 1, "only the newest anchor survives");
        // Every surviving segment is needed: the first one must straddle or
        // immediately follow the anchor.
        assert!(summary.anchor_epoch <= summary.last_epoch);

        let recovered = engine.recover(dir.path(), StoreConfig::default()).unwrap();
        assert_eq!(recovered.epoch(), 20);
        assert_eq!(recovered.full_report(), &report);
    }

    #[test]
    fn torn_tail_is_truncated_and_session_continues() {
        let dir = TestDir::new("store-torn");
        let fabric = fabric();
        let engine = ScoutEngine::new();
        let mut ds = engine
            .open_durable(&fabric, dir.path(), StoreConfig::default())
            .unwrap();
        drive(&mut ds, 5);
        let report_at_5 = ds.full_report().clone();
        let seg_path = ds.active_path.clone();
        drop(ds);

        // Tear the last append: chop 3 bytes off the final record.
        let bytes = fs::read(&seg_path).unwrap();
        let file = OpenOptions::new().write(true).open(&seg_path).unwrap();
        file.set_len(bytes.len() as u64 - 3).unwrap();
        drop(file);

        let mut recovered = engine.recover(dir.path(), StoreConfig::default()).unwrap();
        assert_eq!(recovered.epoch(), 4, "the torn epoch-5 record is lost");
        assert!(recovered.store_stats().torn_bytes_truncated > 0);
        // The session keeps going: re-ingest epoch 5.
        recovered.ingest(EventBatch::empty(5)).unwrap();
        assert_eq!(recovered.full_report(), &report_at_5);
        drop(recovered);
        verify_dir(dir.path()).unwrap();
    }

    #[test]
    fn forged_zero_epoch_segment_is_a_typed_error_not_a_panic() {
        use crate::digest::sha256;
        use crate::journal::JournalError;

        let dir = TestDir::new("store-zero-epoch");
        let fabric = fabric();
        let engine = ScoutEngine::new();
        let mut ds = engine.open_durable(&fabric, dir.path(), config()).unwrap();
        drive(&mut ds, 5);
        drop(ds);

        // A header-only segment claiming first_epoch = 0 with a valid CRC —
        // the crafted input that used to underflow `end_epoch` during scan.
        let forged = SegmentHeader {
            first_epoch: 0,
            prev_chain: sha256(b"forged"),
        }
        .to_bytes();
        let journal_dir = dir.path().join(JOURNAL_SUBDIR);
        fs::write(journal_dir.join(segment_name(0)), forged).unwrap();

        let expect_typed = |verdict: Result<(), StoreError>| match verdict {
            Err(StoreError::Journal {
                source: JournalError::FirstEpochZero,
                ..
            }) => {}
            other => panic!("forged segment must be a typed error, got {other:?}"),
        };
        expect_typed(verify_dir(dir.path()).map(|_| ()));
        expect_typed(
            engine
                .recover(dir.path(), StoreConfig::default())
                .map(|_| ()),
        );

        // Same when the forged segment is the *last* one (the lenient
        // prefix decoder recovery uses on the active segment).
        for entry in fs::read_dir(&journal_dir).unwrap() {
            let path = entry.unwrap().path();
            if path.file_name().unwrap().to_string_lossy() != segment_name(0) {
                fs::remove_file(path).unwrap();
            }
        }
        expect_typed(verify_dir(dir.path()).map(|_| ()));
    }

    #[test]
    fn stale_anchors_outside_coverage_are_reported_and_removed() {
        let dir = TestDir::new("store-stale-anchors");
        let fabric = fabric();
        let engine = ScoutEngine::new();
        let mut cfg = config(); // snapshot_every: 4, segment_max_records: 3
        cfg.compact = false;
        let mut ds = engine.open_durable(&fabric, dir.path(), cfg).unwrap();
        drive(&mut ds, 20);
        let report = ds.full_report().clone();
        drop(ds);

        // Simulate a compaction interrupted between deleting covered
        // segments and deleting the anchors they covered: drop every
        // segment below epoch 10 by hand. Anchors 0, 4 and 8 are now
        // stranded outside journal coverage.
        let journal_dir = dir.path().join(JOURNAL_SUBDIR);
        for entry in fs::read_dir(&journal_dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let first = parse_fixed(&name, "seg-", ".scjl").unwrap();
            if first < 10 {
                fs::remove_file(&path).unwrap();
            }
        }

        let summary = verify_dir(dir.path()).unwrap();
        assert_eq!(summary.last_epoch, 20);
        assert_eq!(summary.stale_anchors, 3, "anchors 0, 4, 8 are stranded");
        assert_eq!(summary.anchors, 3, "anchors 12, 16, 20 stay chain-checked");

        let recovered = engine.recover(dir.path(), StoreConfig::default()).unwrap();
        assert_eq!(recovered.epoch(), 20);
        assert_eq!(recovered.full_report(), &report);
        drop(recovered);

        // Recovery finished the interrupted compaction's job.
        let summary = verify_dir(dir.path()).unwrap();
        assert_eq!(summary.stale_anchors, 0);
        assert_eq!(summary.anchors, 3);
        assert_eq!(summary.last_epoch, 20);
    }

    #[test]
    fn oversized_batch_is_refused_before_any_write_and_does_not_poison() {
        use crate::journal::{JournalError, MAX_RECORD_PAYLOAD};
        use scout_fabric::{wire, FabricEvent};

        let dir = TestDir::new("store-oversized");
        let fabric = fabric();
        let engine = ScoutEngine::new();
        let mut ds = engine.open_durable(&fabric, dir.path(), config()).unwrap();
        drive(&mut ds, 2);

        // A real rule from the deployed fabric, repeated until the batch's
        // wire encoding lands just past the record cap.
        let rules = fabric.tcam_rules(sample::S2);
        let rule = *rules.first().expect("deployed switch has rules");
        let epoch = ds.next_epoch();
        let sized = |n: usize| {
            wire::to_bytes(&EventBatch::new(
                epoch,
                vec![FabricEvent::TcamSync {
                    switch: sample::S2,
                    rules: vec![rule; n],
                }],
            ))
            .len()
        };
        let base = sized(0);
        let per_rule = sized(1) - base;
        let count = (MAX_RECORD_PAYLOAD as usize - base) / per_rule + 2;
        let huge = EventBatch::new(
            epoch,
            vec![FabricEvent::TcamSync {
                switch: sample::S2,
                rules: vec![rule; count],
            }],
        );

        let stats_before = *ds.store_stats();
        match ds.append(huge) {
            Err(StoreError::Journal {
                source: JournalError::OversizedPayload { len },
                ..
            }) => assert!(len > MAX_RECORD_PAYLOAD),
            other => panic!("oversized batch must be refused, got {other:?}"),
        }
        assert!(!ds.is_poisoned(), "a refused batch must not poison");
        assert_eq!(ds.store_stats().appends, stats_before.appends);
        assert_eq!(
            ds.store_stats().bytes_appended,
            stats_before.bytes_appended,
            "no bytes may reach the journal"
        );

        // The session carries on at the same epoch, and the store it leaves
        // behind recovers cleanly.
        drive(&mut ds, 1);
        let report = ds.full_report().clone();
        let end = ds.epoch();
        drop(ds);
        let recovered = engine.recover(dir.path(), StoreConfig::default()).unwrap();
        assert_eq!(recovered.epoch(), end);
        assert_eq!(recovered.full_report(), &report);
    }

    #[test]
    fn injected_crash_poisons_and_recovery_lands_on_a_committed_epoch() {
        let dir = TestDir::new("store-crash");
        let fabric = fabric();
        let engine = ScoutEngine::new();
        let mut cfg = config();
        cfg.crash_plan = Some(CrashPlan {
            abort_after_ops: 25,
            partial_seed: 7,
        });
        let mut ds = engine.open_durable(&fabric, dir.path(), cfg).unwrap();
        let mut crashed_at = None;
        for epoch in 1..=50u64 {
            match ds.ingest(EventBatch::empty(epoch)) {
                Ok(_) => {}
                Err(StoreError::InjectedCrash) => {
                    crashed_at = Some(epoch);
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let crashed_at = crashed_at.expect("the plan fires within 50 epochs");
        assert!(ds.is_poisoned());
        assert!(matches!(
            ds.ingest(EventBatch::empty(crashed_at + 1)),
            Err(StoreError::Poisoned)
        ));
        drop(ds);

        let recovered = engine.recover(dir.path(), StoreConfig::default()).unwrap();
        assert!(recovered.epoch() <= crashed_at);
        // Whatever epoch survived, the state must be the uninterrupted one.
        let mut reference = engine.open_session(&fabric);
        for epoch in 1..=recovered.epoch() {
            reference.ingest(EventBatch::empty(epoch)).unwrap();
        }
        assert_eq!(recovered.full_report(), reference.full_report());
    }

    #[test]
    fn errors_render() {
        let errs = [
            StoreError::NotAStore {
                path: PathBuf::from("/x"),
            },
            StoreError::MissingAnchor,
            StoreError::SegmentOrder {
                prev_end: 3,
                next_first: 9,
            },
            StoreError::ChainDiscontinuity { at_epoch: 3 },
            StoreError::AnchorChainMismatch { epoch: 3 },
            StoreError::MissingEpochs {
                journal_first: 9,
                anchor_epoch: 3,
            },
            StoreError::AnchorBeyondJournal {
                anchor_epoch: 9,
                journal_end: 3,
            },
            StoreError::InjectedCrash,
            StoreError::Poisoned,
        ];
        for err in errs {
            assert!(!err.to_string().is_empty());
        }
    }
}
