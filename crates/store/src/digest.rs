//! In-house SHA-256 — the hash primitive behind the journal's tamper-evident
//! chain.
//!
//! The workspace is registry-free, so the digest is implemented here from the
//! FIPS 180-4 specification and pinned against the standard test vectors.
//! Throughput is not the point — journal records are small and the chain is
//! verified once per recovery — collision resistance is: a spliced or
//! re-stamped journal prefix can only survive recovery by producing a
//! SHA-256 collision at the next anchor's recorded chain value.

/// Length of a [`Digest`] in bytes.
pub const DIGEST_LEN: usize = 32;

/// A SHA-256 digest; also the type of the journal's chain values.
pub type Digest = [u8; DIGEST_LEN];

/// SHA-256 round constants (first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the square
/// roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
///
/// ```
/// use scout_store::digest::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), scout_store::digest::sha256(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    block: [u8; 64],
    block_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            block: [0; 64],
            block_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `bytes`; equivalent to hashing the concatenation of every
    /// `update` in order.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total_len = self.total_len.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.block_len > 0 {
            let take = rest.len().min(64 - self.block_len);
            self.block[self.block_len..self.block_len + take].copy_from_slice(&rest[..take]);
            self.block_len += take;
            rest = &rest[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut full = [0u8; 64];
            full.copy_from_slice(block);
            self.compress(&full);
            rest = tail;
        }
        if !rest.is_empty() {
            self.block[..rest.len()].copy_from_slice(rest);
            self.block_len = rest.len();
        }
    }

    /// Applies the final padding and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit message length.
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        self.total_len = 0; // the length bytes themselves are not counted
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.block_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `bytes`.
pub fn sha256(bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finalize()
}

/// The journal chain step: `chain_next(prev, payload) = SHA-256(prev ∥ payload)`.
///
/// Every journal record stores the chain value over its own payload; forging
/// any earlier record while keeping a later anchor's recorded chain value
/// intact requires a second-preimage on this construction.
pub fn chain_next(prev: &Digest, payload: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(payload);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &Digest) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_180_4_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        assert_eq!(
            hex(&sha256(&vec![b'a'; 1_000_000])),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let want = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn chain_step_is_order_sensitive() {
        let a = chain_next(&sha256(b"x"), b"payload");
        let b = chain_next(&sha256(b"payload"), b"x");
        assert_ne!(a, b);
        assert_ne!(a, sha256(b"payload"));
    }
}
